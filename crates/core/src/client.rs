//! The Tiptoe client (paper §3.2 "Search queries with Tiptoe").
//!
//! A client downloads the embedding model, the PCA projection, and the
//! cluster centroids once; fetches single-use query tokens ahead of
//! time (§6.3); and then, per query:
//!
//! 1. embeds its query string locally, projects (PCA), normalizes, and
//!    quantizes it;
//! 2. selects the nearest cluster `i*` from its local centroid cache;
//! 3. uploads `Enc(q̃)` with the query in block `i*` to the ranking
//!    service and decrypts the returned per-member scores with a
//!    ranking token;
//! 4. computes which URL batch holds the best-scoring member and
//!    retrieves it from the URL service via PIR with a URL token;
//! 5. outputs the top-`k` URLs of that batch, ordered by score.
//!
//! Every message's exact size is recorded in the instance's
//! [`tiptoe_net::Transcript`] and summarized per query in
//! [`QueryCost`].

use std::collections::VecDeque;
use std::time::Duration;

use rand::rngs::StdRng;
use tiptoe_embed::pca::Pca;
use tiptoe_embed::quantize::Quantizer;
use tiptoe_embed::vector::normalize;
use tiptoe_embed::Embedder;
use tiptoe_math::rng::{derive_seed, seeded_rng};
use tiptoe_net::{
    timed, DeadlineBudget, FaultPlan, FaultReport, Ledger, LinkModel, ParallelTiming, Phase,
    ServeError,
};
use tiptoe_obs::recorder::{self, result_code, EventKind};
use tiptoe_pir::PirClient;
use tiptoe_underhood::{
    combine_decoded_subset, combine_partial_tokens, ClientKey, DecodedToken, EncryptedSecret,
};

use crate::batch::ClientMetadata;
use crate::instance::TiptoeInstance;
use crate::serving::ServingPlane;

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedUrl {
    /// Original document ID.
    pub doc: u32,
    /// Document URL.
    pub url: String,
    /// Approximate inner-product score (dequantized).
    pub score: f32,
}

/// Exact per-phase costs of one query (the columns of Table 7).
#[derive(Debug, Clone, Default)]
pub struct QueryCost {
    /// Token-phase upload (the encrypted secret; pre-query).
    pub token_up: u64,
    /// Token-phase download (ranking + URL tokens; pre-query).
    pub token_down: u64,
    /// Ranking upload (the query ciphertext).
    pub rank_up: u64,
    /// Ranking download (encrypted scores).
    pub rank_down: u64,
    /// URL-service upload.
    pub url_up: u64,
    /// URL-service download.
    pub url_down: u64,
    /// Server time for token generation (pre-query).
    pub token_server: ParallelTiming,
    /// Server time for the ranking answer.
    pub rank_server: ParallelTiming,
    /// Server time for the PIR answer.
    pub url_server: ParallelTiming,
    /// Client-local compute on the critical path (embed, select,
    /// encrypt, decrypt, decompress).
    pub client_time: Duration,
    /// Client-local compute off the critical path (key generation,
    /// token decode).
    pub client_preproc: Duration,
}

impl QueryCost {
    /// Bytes on the latency-critical path (after the query is known).
    pub fn online_bytes(&self) -> u64 {
        self.rank_up + self.rank_down + self.url_up + self.url_down
    }

    /// Bytes exchanged before the query is known.
    pub fn offline_bytes(&self) -> u64 {
        self.token_up + self.token_down
    }

    /// Total traffic (the paper's "56.9 MiB, 74% ahead of time").
    pub fn total_bytes(&self) -> u64 {
        self.online_bytes() + self.offline_bytes()
    }

    /// Total server compute, in core-seconds.
    pub fn server_core_seconds(&self) -> f64 {
        (self.token_server.cpu + self.rank_server.cpu + self.url_server.cpu).as_secs_f64()
    }

    /// Client-perceived latency under a link model: the ranking phase
    /// plus the URL phase plus local client work (the token phase
    /// happened before the user typed the query).
    pub fn perceived_latency(&self, link: &LinkModel) -> Duration {
        link.phase_latency(self.rank_up, self.rank_down, self.rank_server.wall)
            + link.phase_latency(self.url_up, self.url_down, self.url_server.wall)
            + self.client_time
    }

    /// Latency of the (pre-query) token phase.
    pub fn token_latency(&self, link: &LinkModel) -> Duration {
        link.phase_latency(self.token_up, self.token_down, self.token_server.wall)
            + self.client_preproc
    }
}

/// The ranking-token material a client holds per query: the combined
/// form on the fault-oblivious path, or one decoded token per shard on
/// the fault-tolerant path (so decryption can proceed over any
/// surviving subset — see [`combine_decoded_subset`]).
enum RankTokens {
    Combined(DecodedToken<u64>),
    PerShard(Vec<DecodedToken<u64>>),
}

/// A prefetched, single-use token pair (ranking + URL) together with
/// the **fresh** client key it was generated for. §6.3: a token — and
/// therefore its inner secret — is consumed by exactly one query;
/// reusing the secret for a second query ciphertext would break
/// semantic security, so every fetch samples a new key.
struct PreparedTokens {
    key: ClientKey,
    rank: RankTokens,
    url: DecodedToken<u32>,
    cost: QueryCost,
}

/// What degraded about a fault-tolerant query (present on
/// [`SearchResults`] iff the instance's fault policy is enabled).
#[derive(Debug, Clone, Default)]
pub struct DegradedQuery {
    /// Clusters whose ranking scores never arrived (their documents
    /// cannot appear in `hits` this query).
    pub missing_clusters: Vec<usize>,
    /// The cluster this query searched was among the missing: the
    /// returned hits carry zero scores and the query should be retried.
    pub searched_cluster_missing: bool,
    /// The URL server never delivered: `hits` is empty.
    pub url_failed: bool,
    /// Retry/timeout/hedge accounting for the ranking fan-out.
    pub rank_report: FaultReport,
    /// Retry/timeout/hedge accounting for the URL phase.
    pub url_report: FaultReport,
}

/// Results of one private search.
#[derive(Debug, Clone)]
pub struct SearchResults {
    /// The cluster the client searched (its own secret; exposed for
    /// evaluation only).
    pub cluster: usize,
    /// Top URLs from the fetched batch, best first.
    pub hits: Vec<RankedUrl>,
    /// Exact costs of this query.
    pub cost: QueryCost,
    /// Degraded-mode accounting: `Some` iff the instance's fault
    /// policy is enabled (even on all-healthy queries, so callers can
    /// check `missing_clusters.is_empty()` uniformly).
    pub degraded: Option<DegradedQuery>,
}

/// The Tiptoe client state.
pub struct TiptoeClient {
    /// Inner secret dimension for fresh per-token keys.
    max_n: usize,
    pca: Pca,
    meta: ClientMetadata,
    quant: Quantizer,
    rng: StdRng,
    tokens: VecDeque<PreparedTokens>,
    /// One-time setup download (model + centroids + PCA).
    pub setup_bytes: u64,
}

impl TiptoeClient {
    /// Creates a client: generates keys and "downloads" the metadata
    /// bundle (recorded in the instance transcript under `setup`).
    pub fn new<E: Embedder>(instance: &TiptoeInstance<E>, seed: u64) -> Self {
        let meta = instance.artifacts.meta.clone();
        let setup_bytes = meta.setup_download_bytes();
        instance.transcript.record_down(Phase::Setup, setup_bytes);
        let rng = seeded_rng(derive_seed(seed, 0xc11e27));
        // One inner ternary secret serves both services per token
        // (§A.3); a *fresh* one is sampled per token (§6.3). Its
        // dimension is the larger of the two secret dimensions.
        let max_n = instance.config.rank_lwe.n.max(instance.config.url_lwe.n);
        Self {
            max_n,
            pca: instance.artifacts.pca.clone(),
            meta,
            quant: instance.config.quantizer(),
            rng,
            tokens: VecDeque::new(),
            setup_bytes,
        }
    }

    /// Number of unused prefetched tokens.
    pub fn tokens_available(&self) -> usize {
        self.tokens.len()
    }

    /// Prefetches one query token pair (§6.3, off the critical path):
    /// uploads the encrypted secret once and downloads the ranking and
    /// URL tokens. Returns the cost of the fetch.
    pub fn fetch_token<E: Embedder>(&mut self, instance: &TiptoeInstance<E>) -> QueryCost {
        self.fetch_token_via(instance, None)
    }

    /// [`TiptoeClient::fetch_token`] through a serving plane: the
    /// server-side hint evaluation goes through the plane's coalescing
    /// token lane, so token fetches issued by concurrent clients share
    /// one pass over each service's hint polynomials. Tokens are
    /// bit-identical to the direct fetch.
    pub fn fetch_token_via<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        serving: Option<&ServingPlane<'_>>,
    ) -> QueryCost {
        // A *standalone* prefetch (one happening outside a query
        // round, e.g. in the background between queries) is its own
        // tracing boundary: without this, its spans — notably the
        // per-shard `rank.token_shard` fan-out — would pile into the
        // previous query's buffer and never be exported. The query
        // scope also gives the prefetch its own flight-recorder
        // timeline (adopting the surrounding query's when nested).
        let standalone = tiptoe_obs::enabled() && tiptoe_obs::current_span().is_none();
        let _scope = tiptoe_obs::query_scope();
        let cost = self.fetch_token_inner(instance, serving);
        if standalone {
            tiptoe_obs::export::export_query_artifacts();
        }
        cost
    }

    /// The token fetch proper (see [`Self::fetch_token`]).
    fn fetch_token_inner<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        serving: Option<&ServingPlane<'_>>,
    ) -> QueryCost {
        let _span = tiptoe_obs::span("client.token_fetch");
        let mut cost = QueryCost::default();
        let uh_rank = instance.ranking.underhood();
        let uh_url = instance.url.underhood();

        // A fresh composite key per token (§6.3), then the encrypted
        // inner secret; both services evaluate their hints over the
        // same upload (§A.3).
        let ((key, es), t_enc) = timed(|| {
            let key = ClientKey::generate(uh_rank, self.max_n, &mut self.rng);
            let es = EncryptedSecret::encrypt(uh_rank, &key, &mut self.rng);
            (key, es)
        });
        cost.token_up = es.byte_len();
        instance.transcript.record_up(Phase::Token, cost.token_up);

        // The server expands the upload once and reuses it for both
        // services (§A.3's shared-secret-key optimization) and for
        // every ranking shard. On the fault-tolerant path the
        // coordinator skips combining the per-shard ranking tokens:
        // the client downloads all `W` of them (a `W×` token-phase
        // download) so it can later decrypt over any surviving subset.
        let (expanded, t_expand) = timed(|| es.expand(uh_rank));
        let fault_tolerant = instance.config.fault_policy.enabled;
        let (rank_tokens, url_token, t_tokens) = if let Some(plane) = serving {
            // Coalesced fetch: this client's expanded secret is
            // batched with concurrently arriving clients' and both
            // services' hint evaluations are flushed through the
            // batched kernels. The coordinator-side part sum of the
            // combined path applies to the returned per-shard parts.
            let (bundle, wall) = timed(|| plane.generate_tokens(std::sync::Arc::new(expanded)));
            let rank_tokens = if fault_tolerant {
                bundle.rank_parts
            } else {
                vec![combine_partial_tokens(uh_rank, &bundle.rank_parts)]
            };
            (rank_tokens, bundle.url, ParallelTiming { wall, cpu: wall })
        } else {
            let (rank_tokens, t_rank) = if fault_tolerant {
                instance.ranking.generate_token_parts_expanded(&expanded)
            } else {
                let (combined, t) = instance.ranking.generate_token_expanded(&expanded);
                (vec![combined], t)
            };
            let (url_token, t_url) = instance.url.generate_token_expanded(&expanded);
            (rank_tokens, url_token, t_rank.then(t_url))
        };
        let mut t_tokens = t_tokens;
        t_tokens.cpu += t_expand;
        t_tokens.wall += t_expand;
        cost.token_server = t_tokens;
        cost.token_down =
            rank_tokens.iter().map(|t| t.byte_len()).sum::<u64>() + url_token.byte_len();
        instance.transcript.record_down(Phase::Token, cost.token_down);

        let (decoded, t_decode) = timed(|| {
            let _span = tiptoe_obs::span("client.token_decrypt");
            let rank = if fault_tolerant {
                RankTokens::PerShard(
                    rank_tokens.iter().map(|t| uh_rank.decode_token::<u64>(&key, t)).collect(),
                )
            } else {
                RankTokens::Combined(uh_rank.decode_token::<u64>(&key, &rank_tokens[0]))
            };
            let url = uh_url.decode_token::<u32>(&key, &url_token);
            (rank, url)
        });
        cost.client_preproc = t_enc + t_decode;

        self.tokens.push_back(PreparedTokens {
            key,
            rank: decoded.0,
            url: decoded.1,
            cost: cost.clone(),
        });
        cost
    }

    /// Multi-probe private search (paper §8.2: "Querying more clusters
    /// could improve search quality, but would substantially increase
    /// Tiptoe's costs"): runs `probes` independent single-cluster
    /// searches against the client's `probes` nearest centroids and
    /// merges the results. Costs scale linearly with `probes` (each
    /// probe consumes one token and one full protocol round).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `probes == 0`.
    pub fn search_multiprobe<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
        probes: usize,
    ) -> SearchResults {
        assert!(probes > 0, "need at least one probe");
        // Rank the centroids once, then force each probe's cluster by
        // temporarily masking the centroid cache.
        let raw = instance.embedder.embed_text(query);
        let mut q = self.pca.project(&raw);
        normalize(&mut q);
        let order = ranked_centroids(&self.meta.centroids, &q, probes);

        let mut merged: Vec<RankedUrl> = Vec::new();
        let mut total_cost = QueryCost::default();
        let first_cluster = order.first().copied().unwrap_or(0);
        let mut degraded: Option<DegradedQuery> = None;
        for &cluster in &order {
            let results = self
                .search_in_cluster(instance, query, k, Some(cluster), None, None, None)
                .expect("unbudgeted search cannot fail");
            total_cost = add_costs(&total_cost, &results.cost);
            merged.extend(results.hits);
            degraded = merge_degraded(degraded, results.degraded);
        }
        merged.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        // A dual-assigned document can surface from two probes; keep
        // its best-scoring occurrence only.
        let mut seen = std::collections::HashSet::new();
        merged.retain(|h| seen.insert(h.doc));
        merged.truncate(k);
        SearchResults { cluster: first_cluster, hits: merged, cost: total_cost, degraded }
    }

    /// Executes one private search, consuming one token (fetching one
    /// first if none is cached).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn search<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
    ) -> SearchResults {
        self.search_in_cluster(instance, query, k, None, None, None, None)
            .expect("unbudgeted search cannot fail")
    }

    /// [`TiptoeClient::search`] through a serving plane: shard compute
    /// is routed through the plane's batch coalescers, so searches
    /// issued by concurrent clients share database scans. Results are
    /// bit-identical to [`TiptoeClient::search`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn search_served<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
        serving: &ServingPlane<'_>,
    ) -> SearchResults {
        self.search_in_cluster(instance, query, k, None, None, Some(serving), None)
            .expect("unbudgeted search cannot fail")
    }

    /// The overload-safe form of [`TiptoeClient::search_served`]: the
    /// query first passes the plane's admission control (shed queries
    /// return [`ServeError::Overloaded`] *before* consuming a token or
    /// moving any bytes) and then runs under the plane's per-query
    /// deadline budget, so a stalled lane or exhausted budget surfaces
    /// as a typed [`ServeError::DeadlineExceeded`] instead of blocking.
    /// With admission control disabled on the plane this is exactly
    /// [`TiptoeClient::search_served`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`], [`ServeError::DeadlineExceeded`],
    /// or [`ServeError::LaneFailed`]. A shed query consumed nothing; a
    /// deadlined query consumed its token (the paper's tokens are
    /// single-use) but returned no partial answer.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn try_search_served<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
        serving: &ServingPlane<'_>,
    ) -> Result<SearchResults, ServeError> {
        self.admitted_search(instance, query, k, None, serving)
    }

    /// The overload-safe form of
    /// [`TiptoeClient::search_served_with_faults`]: admission control
    /// and deadline budgets compose with an explicit fault plan, so
    /// the plane sheds excess load while the fault-aware dispatcher
    /// (and the plane's circuit breakers, if enabled) handle the
    /// injected faults underneath.
    ///
    /// # Errors
    ///
    /// See [`TiptoeClient::try_search_served`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the instance's fault policy is disabled.
    pub fn try_search_served_with_faults<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
        plan: &FaultPlan,
        serving: &ServingPlane<'_>,
    ) -> Result<SearchResults, ServeError> {
        assert!(
            instance.config.fault_policy.enabled,
            "try_search_served_with_faults needs an instance with fault_policy.enabled"
        );
        self.admitted_search(instance, query, k, Some(plan), serving)
    }

    /// One admission-controlled protocol round: admit (or shed), then
    /// run the query under the plane's deadline budget while holding
    /// the admission permit.
    fn admitted_search<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
        plan: Option<&FaultPlan>,
        serving: &ServingPlane<'_>,
    ) -> Result<SearchResults, ServeError> {
        // The query boundary opens *before* admission so a shed query
        // still owns a flight-recorder timeline (the shed event plus
        // its typed outcome); the nested scope inside
        // `search_in_cluster` adopts this one.
        let scope = tiptoe_obs::query_scope();
        let permit = match serving.admit() {
            Ok(p) => p,
            Err(e) => {
                // Shed before any wire bytes: the transcript records
                // the rejection itself, never a partial phase.
                instance.transcript.record_shed();
                let (code, b, c) = e.recorder_code();
                recorder::record(EventKind::Finished, code, b, c, 0);
                recorder::dump_on_error(scope.id(), "admission shed");
                return Err(e);
            }
        };
        let budget = serving.query_budget();
        let results =
            self.search_in_cluster(instance, query, k, None, plan, Some(serving), budget.as_ref());
        drop(permit);
        results
    }

    /// [`TiptoeClient::search_with_faults`] through a serving plane:
    /// fault handling applies per query at the dispatch layer while
    /// the healthy shards' compute is still coalesced underneath.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the instance's fault policy is disabled.
    pub fn search_served_with_faults<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
        plan: &FaultPlan,
        serving: &ServingPlane<'_>,
    ) -> SearchResults {
        assert!(
            instance.config.fault_policy.enabled,
            "search_served_with_faults needs an instance with fault_policy.enabled"
        );
        self.search_in_cluster(instance, query, k, None, Some(plan), Some(serving), None)
            .expect("unbudgeted search cannot fail")
    }

    /// One private search under an explicit fault plan: the query runs
    /// through the fault-aware dispatcher (timeouts, retries, hedging
    /// per the instance's [`tiptoe_net::FaultPolicy`]) and completes in
    /// degraded mode over whatever shards survive.
    /// [`SearchResults::degraded`] reports exactly which clusters went
    /// unanswered.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the instance's fault policy is disabled
    /// (the policy governs token shape at fetch time, so it cannot be
    /// chosen per query).
    pub fn search_with_faults<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
        plan: &FaultPlan,
    ) -> SearchResults {
        assert!(
            instance.config.fault_policy.enabled,
            "search_with_faults needs an instance with fault_policy.enabled"
        );
        self.search_in_cluster(instance, query, k, None, Some(plan), None, None)
            .expect("unbudgeted search cannot fail")
    }

    /// One protocol round, optionally forcing the searched cluster
    /// (used by multi-probe; `None` selects the nearest centroid).
    ///
    /// This is also the tracing boundary: when tracing is enabled,
    /// each round clears the span buffer, runs under a `client.query`
    /// root span, and exports the Chrome-trace/metrics/folded
    /// artifacts to the configured path (so the file always holds the
    /// most recent query).
    #[allow(clippy::too_many_arguments)]
    fn search_in_cluster<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
        force_cluster: Option<usize>,
        plan: Option<&FaultPlan>,
        serving: Option<&ServingPlane<'_>>,
        budget: Option<&DeadlineBudget>,
    ) -> Result<SearchResults, ServeError> {
        let scope = tiptoe_obs::query_scope();
        let results = {
            let _root = tiptoe_obs::span("client.query");
            self.run_query(instance, query, k, force_cluster, plan, serving, budget)
        };
        // The typed outcome closes this query's flight-recorder
        // timeline; any failure auto-dumps the full timeline so the
        // evidence survives even if nobody is watching.
        match &results {
            Ok(_) => recorder::record(EventKind::Finished, result_code::OK, 0, 0, 0),
            Err(e) => {
                let (code, b, c) = e.recorder_code();
                recorder::record(EventKind::Finished, code, b, c, 0);
                recorder::dump_on_error(scope.id(), "client.query failed");
            }
        }
        tiptoe_obs::export::export_query_artifacts();
        results
    }

    /// The protocol round proper (see [`Self::search_in_cluster`]).
    #[allow(clippy::too_many_arguments)]
    fn run_query<E: Embedder>(
        &mut self,
        instance: &TiptoeInstance<E>,
        query: &str,
        k: usize,
        force_cluster: Option<usize>,
        plan: Option<&FaultPlan>,
        serving: Option<&ServingPlane<'_>>,
        budget: Option<&DeadlineBudget>,
    ) -> Result<SearchResults, ServeError> {
        assert!(k > 0, "k must be positive");
        if self.tokens.is_empty() {
            // A served query fetches its token through the plane's
            // coalescing token lane; direct queries fetch directly.
            self.fetch_token_via(instance, serving);
        }
        let mut prepared = self.tokens.pop_front().expect("token fetched above");
        let mut cost = prepared.cost.clone();

        // --- Client: embed, reduce, select cluster, encrypt (step 1).
        let ((ct, cluster), t_embed) = timed(|| {
            let embed_span = tiptoe_obs::span("client.embed");
            let raw = instance.embedder.embed_text(query);
            let mut q = self.pca.project(&raw);
            normalize(&mut q);
            drop(embed_span);
            let cluster = {
                let _span = tiptoe_obs::span("client.route");
                force_cluster.unwrap_or_else(|| nearest_centroid(&self.meta.centroids, &q))
            };
            let _span = tiptoe_obs::span("client.encrypt");
            let q_zp = self.quant.to_zp(&q);
            let d = self.meta.d;
            let mut v = vec![0u64; self.meta.ranking_upload_dim()];
            for (j, &x) in q_zp.iter().enumerate() {
                v[cluster * d + j] = x as u64;
            }
            let ct = instance.ranking.underhood().encrypt_query::<u64, _>(
                &prepared.key,
                &instance.ranking.public_matrix(),
                &v,
                &mut self.rng,
            );
            (ct, cluster)
        });
        // --- Ranking service (step 2): one typed dispatch for every
        // serving mode (healthy, fault-aware, coalesced). Sizes are
        // fixed by the protocol shape — a degraded query must keep
        // the same observable wire footprint as a healthy one.
        cost.rank_up = ct.byte_len();
        cost.rank_down = (instance.ranking.rows() * 8) as u64;
        let policy = &instance.config.fault_policy;
        let benign = FaultPlan::none();
        let plan = plan.unwrap_or(&benign);
        let rank_span = tiptoe_obs::span("client.rank_phase");
        let ledger = Ledger {
            transcript: &instance.transcript,
            phase: Phase::Ranking,
            retry_phase: Phase::RankingRetries,
            up_bytes: cost.rank_up,
            down_bytes: cost.rank_down,
        };
        let ranked =
            instance.ranking.try_dispatch_answer(&ct, plan, policy, Some(&ledger), serving, budget)?;
        cost.rank_server = ranked.timing;
        let applied = ranked.response;
        let survivors = ranked.survivors;
        let mut degraded = ranked.report.map(|report| {
            let missing_clusters = instance.ranking.missing_clusters(&survivors);
            DegradedQuery {
                searched_cluster_missing: missing_clusters.contains(&cluster),
                missing_clusters,
                url_failed: false,
                rank_report: report,
                url_report: FaultReport::default(),
            }
        });
        drop(rank_span);

        // --- Client: decrypt scores, pick the best member. On the
        // degraded path the per-shard tokens of the *surviving* shards
        // are summed; if no shard answered, every score is zero.
        let ((scores, best_row), t_rankdec) = timed(|| {
            let _span = tiptoe_obs::span("client.rank_decrypt");
            let uh_rank = instance.ranking.underhood();
            let raw = match &mut prepared.rank {
                RankTokens::Combined(token) => uh_rank.decrypt(token, &applied),
                RankTokens::PerShard(parts) => {
                    if survivors.iter().any(|&ok| ok) {
                        let mut subset = combine_decoded_subset(parts, &survivors);
                        uh_rank.decrypt(&mut subset, &applied)
                    } else {
                        vec![0u64; applied.len()]
                    }
                }
            };
            let n_members = self.meta.cluster_sizes[cluster] as usize;
            let scores: Vec<i64> = raw
                .iter()
                .take(n_members)
                .map(|&s| self.quant.encoder().decode_signed(s))
                .collect();
            let best_row = scores
                .iter()
                .enumerate()
                .max_by_key(|(_, &s)| s)
                .map(|(i, _)| i)
                .unwrap_or(0);
            (scores, best_row)
        });

        // --- URL service (step 3): fetch the batch of the best member.
        let url_span = tiptoe_obs::span("client.url_phase");
        let batch_idx = self.meta.batch_of(cluster, best_row);
        let uh_url = instance.url.underhood();
        let pir_client = PirClient::new(uh_url, &prepared.key);
        let (url_ct, t_urlenc) = timed(|| {
            pir_client.query(
                &instance.url.public_matrix(),
                self.meta.num_batches,
                batch_idx,
                &mut self.rng,
            )
        });
        cost.url_up = url_ct.byte_len();
        // A fixed-size phase regardless of outcome: accounting (and
        // the observable wire footprint) must not depend on faults.
        cost.url_down = (instance.url.database().rows() * 4) as u64;
        let url_ledger = Ledger {
            transcript: &instance.transcript,
            phase: Phase::Url,
            retry_phase: Phase::UrlRetries,
            up_bytes: cost.url_up,
            down_bytes: cost.url_down,
        };
        // The URL server shares the plan's address space at index `W`,
        // after the ranking shards.
        let shard_base = instance.ranking.num_shards();
        let fetched = instance.url.try_dispatch_answer(
            &url_ct,
            shard_base,
            plan,
            policy,
            Some(&url_ledger),
            serving,
            budget,
        )?;
        cost.url_server = fetched.timing;
        let answer = fetched.response;
        if let (Some(report), Some(dq)) = (fetched.report, degraded.as_mut()) {
            dq.url_failed = answer.is_none();
            dq.url_report = report;
        }
        drop(url_span);

        // --- Client: recover the record and assemble ranked URLs. A
        // failed URL phase (or a malformed record) degrades to an
        // empty hit list instead of crashing the client.
        let (hits, t_recover) = timed(|| {
            let _span = tiptoe_obs::span("client.recover");
            let Some(answer) = answer else { return Vec::new() };
            let Ok(record) =
                pir_client.recover(instance.url.database(), &mut prepared.url, &answer)
            else {
                return Vec::new();
            };
            // tzip streams are self-delimiting, so the record's zero
            // padding is ignored by the decoder.
            let entries =
                crate::batch::CompressedUrlBatch::decode_payload(&record).unwrap_or_default();
            // Rows covered by this batch inside the cluster.
            let upb = self.meta.urls_per_batch as usize;
            let first_row = (best_row / upb) * upb;
            let scale2 =
                (self.quant.encoder().scale() * self.quant.encoder().scale()) as f32;
            let mut hits: Vec<RankedUrl> = entries
                .into_iter()
                .enumerate()
                .filter_map(|(offset, (doc, url))| {
                    let score = *scores.get(first_row + offset)?;
                    Some(RankedUrl { doc, url, score: score as f32 / scale2 })
                })
                .collect();
            hits.sort_by(|a, b| {
                b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
            });
            hits.truncate(k);
            hits
        });

        cost.client_time = t_embed + t_rankdec + t_urlenc + t_recover;
        Ok(SearchResults { cluster, hits, cost, degraded })
    }
}

/// Accumulates per-probe degraded-mode reports for multi-probe
/// searches: missing clusters union, flags OR, counters sum.
fn merge_degraded(
    acc: Option<DegradedQuery>,
    next: Option<DegradedQuery>,
) -> Option<DegradedQuery> {
    match (acc, next) {
        (None, next) => next,
        (acc, None) => acc,
        (Some(mut acc), Some(next)) => {
            for c in next.missing_clusters {
                if !acc.missing_clusters.contains(&c) {
                    acc.missing_clusters.push(c);
                }
            }
            acc.searched_cluster_missing |= next.searched_cluster_missing;
            acc.url_failed |= next.url_failed;
            acc.rank_report.retries += next.rank_report.retries;
            acc.rank_report.timeouts += next.rank_report.timeouts;
            acc.rank_report.corrupted += next.rank_report.corrupted;
            acc.rank_report.hedges += next.rank_report.hedges;
            acc.rank_report.wasted_response_bytes += next.rank_report.wasted_response_bytes;
            acc.rank_report.timing = acc.rank_report.timing.then(next.rank_report.timing);
            acc.url_report.retries += next.url_report.retries;
            acc.url_report.timeouts += next.url_report.timeouts;
            acc.url_report.corrupted += next.url_report.corrupted;
            acc.url_report.hedges += next.url_report.hedges;
            acc.url_report.wasted_response_bytes += next.url_report.wasted_response_bytes;
            acc.url_report.timing = acc.url_report.timing.then(next.url_report.timing);
            Some(acc)
        }
    }
}

/// The `k` nearest centroids, best first.
fn ranked_centroids(centroids: &[Vec<f32>], q: &[f32], k: usize) -> Vec<usize> {
    let mut scored: Vec<(f32, usize)> = centroids
        .iter()
        .enumerate()
        .map(|(i, c)| (tiptoe_embed::vector::dot(c, q), i))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(k).map(|(_, i)| i).collect()
}

/// Component-wise sum of two per-query cost records.
fn add_costs(a: &QueryCost, b: &QueryCost) -> QueryCost {
    QueryCost {
        token_up: a.token_up + b.token_up,
        token_down: a.token_down + b.token_down,
        rank_up: a.rank_up + b.rank_up,
        rank_down: a.rank_down + b.rank_down,
        url_up: a.url_up + b.url_up,
        url_down: a.url_down + b.url_down,
        token_server: a.token_server.then(b.token_server),
        rank_server: a.rank_server.then(b.rank_server),
        url_server: a.url_server.then(b.url_server),
        client_time: a.client_time + b.client_time,
        client_preproc: a.client_preproc + b.client_preproc,
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], q: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let s = tiptoe_embed::vector::dot(c, q);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;

    use crate::config::TiptoeConfig;

    fn build_instance() -> TiptoeInstance<TextEmbedder> {
        let corpus = generate(&CorpusConfig::small(200, 21), 20);
        let config = TiptoeConfig::test_small(200, 21);
        let embedder = TextEmbedder::new(config.d_embed, 21, 0);
        TiptoeInstance::build(&config, embedder, &corpus)
    }

    #[test]
    fn end_to_end_search_returns_ranked_urls() {
        let instance = build_instance();
        let corpus = generate(&CorpusConfig::small(200, 21), 20);
        let mut client = instance.new_client(1);
        let query = &corpus.queries[0];
        let results = client.search(&instance, &query.text, 10);
        assert!(!results.hits.is_empty());
        for w in results.hits.windows(2) {
            assert!(w[0].score >= w[1].score, "hits not sorted");
        }
        for hit in &results.hits {
            assert!(hit.url.starts_with("https://"), "bad URL {}", hit.url);
            // The URL matches the original document's URL.
            assert_eq!(hit.url, corpus.docs[hit.doc as usize].url);
        }
    }

    #[test]
    fn search_costs_are_recorded() {
        let instance = build_instance();
        let mut client = instance.new_client(2);
        let results = client.search(&instance, "museum history archive", 5);
        let c = &results.cost;
        assert!(c.token_up > 0 && c.token_down > 0);
        assert!(c.rank_up > 0 && c.rank_down > 0);
        assert!(c.url_up > 0 && c.url_down > 0);
        assert_eq!(c.total_bytes(), c.online_bytes() + c.offline_bytes());
        assert!(c.server_core_seconds() > 0.0);
        let link = LinkModel::paper();
        assert!(c.perceived_latency(&link) >= Duration::from_millis(100), "two RTTs minimum");
        // The transcript saw the same phases.
        use tiptoe_net::Direction;
        assert_eq!(instance.transcript.phase_total(Phase::Ranking, Direction::Upload), c.rank_up);
        assert_eq!(instance.transcript.phase_total(Phase::Url, Direction::Download), c.url_down);
    }

    #[test]
    fn tokens_are_single_use_and_prefetchable() {
        let instance = build_instance();
        let mut client = instance.new_client(3);
        client.fetch_token(&instance);
        client.fetch_token(&instance);
        assert_eq!(client.tokens_available(), 2);
        let _ = client.search(&instance, "health doctor", 3);
        assert_eq!(client.tokens_available(), 1);
        let _ = client.search(&instance, "travel island", 3);
        assert_eq!(client.tokens_available(), 0);
        // Next search auto-fetches.
        let _ = client.search(&instance, "recipe kitchen", 3);
        assert_eq!(client.tokens_available(), 0);
    }

    #[test]
    fn private_search_finds_the_planted_answer_often() {
        // End-to-end quality smoke test. Cluster selection is Tiptoe's
        // dominant quality bottleneck (the paper's cluster-hit rate is
        // ~35%, §8.2), so for a *smoke* test we use few, large clusters
        // to keep the hit rate high, and large batches so the answer's
        // URL travels with the batch the client fetches.
        let corpus = generate(&CorpusConfig::small(200, 22), 30);
        let mut config = TiptoeConfig::test_small(200, 22);
        config.cluster.target_size = 64;
        config.urls_per_batch = 96;
        let embedder = TextEmbedder::new(config.d_embed, 22, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let mut client = instance.new_client(4);
        let mut found = 0;
        for q in corpus.queries.iter().take(10) {
            let results = client.search(&instance, &q.text, 100);
            if results.hits.iter().any(|h| h.doc == q.relevant) {
                found += 1;
            }
        }
        assert!(found >= 5, "only {found}/10 answers found in top-100");
    }

    #[test]
    fn multiprobe_improves_or_matches_single_probe() {
        let corpus = generate(&CorpusConfig::small(200, 23), 20);
        let config = TiptoeConfig::test_small(200, 23);
        let embedder = TextEmbedder::new(config.d_embed, 23, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let mut client = instance.new_client(6);
        let mut single_found = 0;
        let mut multi_found = 0;
        for q in corpus.queries.iter().take(8) {
            let single = client.search(&instance, &q.text, 20);
            let multi = client.search_multiprobe(&instance, &q.text, 20, 3);
            if single.hits.iter().any(|h| h.doc == q.relevant) {
                single_found += 1;
            }
            if multi.hits.iter().any(|h| h.doc == q.relevant) {
                multi_found += 1;
            }
            // Probing costs ~3x the online traffic.
            assert!(multi.cost.online_bytes() >= single.cost.online_bytes() * 2);
            // No duplicate documents after merging.
            let mut docs: Vec<u32> = multi.hits.iter().map(|h| h.doc).collect();
            docs.sort_unstable();
            docs.dedup();
            assert_eq!(docs.len(), multi.hits.len());
        }
        assert!(multi_found >= single_found, "multi {multi_found} < single {single_found}");
    }

    #[test]
    fn queries_have_identical_wire_footprint() {
        // Query privacy: sizes and message flow must not depend on the
        // query string (Definition 2.1's observable part).
        let instance = build_instance();
        let mut client = instance.new_client(5);
        let a = client.search(&instance, "health doctor symptoms", 5).cost;
        let b = client.search(&instance, "completely different query about planets", 5).cost;
        assert_eq!(a.rank_up, b.rank_up);
        assert_eq!(a.rank_down, b.rank_down);
        assert_eq!(a.url_up, b.url_up);
        assert_eq!(a.url_down, b.url_down);
        assert_eq!(a.token_up, b.token_up);
        assert_eq!(a.token_down, b.token_down);
    }
}
