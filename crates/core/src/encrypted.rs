//! Private search over *encrypted* documents (paper §9, "Private
//! search on encrypted data").
//!
//! Here the corpus itself is the client's secret: "the client
//! processes the corpus … embeds each document, clusters the
//! embeddings, and stores the centroids locally. Instead of storing
//! the plaintext embeddings and URLs on the Tiptoe servers, the client
//! encrypts the embeddings and URLs and stores the encrypted search
//! data structures on the Tiptoe servers."
//!
//! The paper sketches ranking under a degree-two homomorphic scheme.
//! We implement the same end state — the server learns nothing about
//! the query *or* the corpus beyond its total size — with a
//! construction our stack supports exactly (documented as a deviation
//! in `DESIGN.md` §2): per-cluster *encrypted blobs* (embeddings +
//! URLs under a client-keyed stream cipher) served by PIR. The client
//! picks its cluster locally from its cached centroids, privately
//! fetches that cluster's blob, decrypts, and ranks locally. Both the
//! access pattern (PIR) and the content (client-side encryption) are
//! hidden; the download is one cluster (`O(√N·d)`), the same
//! asymptotics as Tiptoe's ranking download.

use rand::Rng;
use tiptoe_cluster::cluster_documents;
use tiptoe_embed::quantize::Quantizer;
use tiptoe_embed::vector::{dot, normalize};
use tiptoe_math::rng::{derive_seed, seeded_rng};
use tiptoe_pir::{PirClient, PirDatabase, PirServer};
use tiptoe_underhood::{ClientKey, EncryptedSecret, Underhood};

use crate::config::TiptoeConfig;

/// Records a deployment's analytic noise-budget headroom as the gauge
/// `rlwe.noise_budget_bits[label]`: `log2(Δ/2) − log2(B_total(m))`
/// where `B_total` is the composed scheme's total noise bound at
/// upload dimension `m`. Positive bits = headroom before decryption
/// rounds incorrectly; the build-time asserts require > 0, and the
/// gauge makes the margin visible in every metrics snapshot.
pub fn record_noise_budget_gauge(label: &'static str, uh: &Underhood, m: usize) {
    let delta_half = uh.lwe().delta() as f64 / 2.0;
    let bound = uh.total_noise_bound(m).max(f64::MIN_POSITIVE);
    let bits = delta_half.log2() - bound.log2();
    tiptoe_obs::metrics().gauge_with("rlwe.noise_budget_bits", Some(label.into())).set(bits);
}

/// XORs `data` with the ChaCha keystream for `(key, record)`. The
/// per-record nonce (the record index) keeps streams independent.
fn stream_cipher(key: u64, record: u64, data: &mut [u8]) {
    let mut rng = seeded_rng(derive_seed(key, record ^ 0x5ec2e7));
    for b in data.iter_mut() {
        *b ^= rng.gen::<u8>();
    }
}

/// One plaintext document of the client's private corpus.
#[derive(Debug, Clone)]
pub struct PrivateDoc {
    /// Client-assigned identifier.
    pub id: u32,
    /// Metadata revealed to the client on retrieval (e.g. a URL or
    /// file path).
    pub url: String,
    /// Document embedding.
    pub embedding: Vec<f32>,
}

/// The client-side index state (kept by the data owner).
pub struct EncryptedIndexKey {
    cipher_key: u64,
    centroids: Vec<Vec<f32>>,
    quant: Quantizer,
    d: usize,
}

/// The server-side state: PIR over opaque encrypted cluster blobs.
pub struct EncryptedIndexServer {
    server: PirServer,
}

/// Builds the encrypted index: the *client* clusters its documents,
/// serializes each cluster (quantized embeddings + URLs), encrypts
/// each blob, and ships the ciphertexts to the server.
///
/// Returns the client key material and the server state.
///
/// # Panics
///
/// Panics if `docs` is empty or dimensions are inconsistent with the
/// configuration.
pub fn build_encrypted_index(
    config: &TiptoeConfig,
    docs: &[PrivateDoc],
    cipher_key: u64,
) -> (EncryptedIndexKey, EncryptedIndexServer) {
    assert!(!docs.is_empty(), "empty corpus");
    let d = config.d_reduced;
    assert!(docs.iter().all(|doc| doc.embedding.len() == d), "dimension mismatch");
    let mut embeddings: Vec<Vec<f32>> = docs.iter().map(|doc| doc.embedding.clone()).collect();
    for e in embeddings.iter_mut() {
        normalize(e);
    }
    let clustering = cluster_documents(&embeddings, &config.cluster);
    let quant = config.quantizer();

    // Serialize each cluster: lines of "<id>\t<url>\t<q0,q1,...>".
    let mut records: Vec<Vec<u8>> = Vec::with_capacity(clustering.num_clusters());
    for members in &clustering.members {
        let mut blob = String::new();
        for &m in members {
            let doc = &docs[m as usize];
            let q = quant.to_signed(&embeddings[m as usize]);
            let q_str: Vec<String> = q.iter().map(i64::to_string).collect();
            blob.push_str(&format!("{}\t{}\t{}\n", doc.id, doc.url, q_str.join(",")));
        }
        let mut bytes = tiptoe_corpus::tzip::compress(blob.as_bytes());
        stream_cipher(cipher_key, records.len() as u64, &mut bytes);
        records.push(bytes);
    }

    let uh = Underhood::with_outer(config.url_lwe, config.rlwe, config.switch_log_q2);
    record_noise_budget_gauge("encrypted-index", &uh, records.len());
    let db = PirDatabase::build_with_params(&records, config.url_lwe);
    let server = PirServer::new(db, derive_seed(config.seed, 0xe7c), uh);

    (
        EncryptedIndexKey { cipher_key, centroids: clustering.centroids.clone(), quant, d },
        EncryptedIndexServer { server },
    )
}

impl EncryptedIndexServer {
    /// The composed-scheme parameters.
    pub fn underhood(&self) -> &Underhood {
        self.server.underhood()
    }

    /// Server-side storage (all ciphertext).
    pub fn storage_bytes(&self) -> u64 {
        self.server.database().storage_bytes()
    }
}

/// Privately searches the encrypted corpus: selects the cluster
/// locally, PIR-fetches its encrypted blob, decrypts, and ranks by
/// inner product. Returns `(id, url, score)`, best first.
pub fn search_encrypted<R: Rng + ?Sized>(
    index_key: &EncryptedIndexKey,
    server: &EncryptedIndexServer,
    client_key: &ClientKey,
    query_embedding: &[f32],
    k: usize,
    rng: &mut R,
) -> Vec<(u32, String, f32)> {
    assert_eq!(query_embedding.len(), index_key.d, "query dimension mismatch");
    let mut q = query_embedding.to_vec();
    normalize(&mut q);
    let cluster = index_key
        .centroids
        .iter()
        .enumerate()
        .max_by(|a, b| dot(a.1, &q).partial_cmp(&dot(b.1, &q)).expect("no NaN"))
        .map(|(i, _)| i)
        .unwrap_or(0);

    let uh = server.underhood();
    let es = EncryptedSecret::encrypt(uh, client_key, rng);
    let token = server.server.generate_token(&es);
    let pir = PirClient::new(uh, client_key);
    let mut decoded = pir.decode_token(&token);
    let ct = pir.query(
        &server.server.public_matrix(),
        server.server.database().num_records(),
        cluster,
        rng,
    );
    let answer = server.server.answer(&ct);
    let mut record = pir
        .recover(server.server.database(), &mut decoded, &answer)
        .expect("in-process PIR answer has the declared length");

    stream_cipher(index_key.cipher_key, cluster as u64, &mut record);
    let Ok(raw) = tiptoe_corpus::tzip::decompress(&record) else {
        return Vec::new();
    };
    let text = String::from_utf8_lossy(&raw);
    let q_signed = index_key.quant.to_signed(&q);
    let scale2 = (index_key.quant.encoder().scale() * index_key.quant.encoder().scale()) as f32;
    let mut hits: Vec<(u32, String, f32)> = text
        .lines()
        .filter_map(|line| {
            let mut parts = line.splitn(3, '\t');
            let id: u32 = parts.next()?.parse().ok()?;
            let url = parts.next()?.to_owned();
            let emb: Vec<i64> =
                parts.next()?.split(',').filter_map(|x| x.parse().ok()).collect();
            let score: i64 = emb.iter().zip(q_signed.iter()).map(|(&a, &b)| a * b).sum();
            Some((id, url, score as f32 / scale2))
        })
        .collect();
    hits.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::rng::seeded_rng;

    fn private_docs(n: usize, d: usize, seed: u64) -> Vec<PrivateDoc> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|i| {
                let mut e: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                normalize(&mut e);
                PrivateDoc { id: i as u32, url: format!("file:///private/doc-{i}"), embedding: e }
            })
            .collect()
    }

    #[test]
    fn encrypted_search_finds_the_nearest_document() {
        let config = TiptoeConfig::test_small(80, 44);
        let docs = private_docs(80, config.d_reduced, 1);
        let (index_key, server) = build_encrypted_index(&config, &docs, 0xdeadbeef);
        let mut rng = seeded_rng(2);
        let client_key =
            ClientKey::generate(server.underhood(), server.underhood().lwe().n, &mut rng);

        let target = 23usize;
        let mut q = docs[target].embedding.clone();
        q[1] += 0.03;
        let hits = search_encrypted(&index_key, &server, &client_key, &q, 5, &mut rng);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].0, target as u32, "top hit {:?}", hits[0]);
        assert_eq!(hits[0].1, docs[target].url);
    }

    #[test]
    fn server_state_is_ciphertext_only() {
        let config = TiptoeConfig::test_small(40, 45);
        let docs = private_docs(40, config.d_reduced, 3);
        let (_, server_a) = build_encrypted_index(&config, &docs, 111);
        let (_, server_b) = build_encrypted_index(&config, &docs, 222);
        // Same corpus, different client keys -> different server bytes
        // (the plaintext never reaches the server).
        assert_eq!(
            server_a.server.database().num_records(),
            server_b.server.database().num_records()
        );
        let a = server_a.server.database().matrix().data();
        let b = server_b.server.database().matrix().data();
        assert_ne!(a, b, "server-side bytes must depend on the cipher key");
    }

    #[test]
    fn wrong_cipher_key_cannot_decode() {
        let config = TiptoeConfig::test_small(40, 46);
        let docs = private_docs(40, config.d_reduced, 4);
        let (mut index_key, server) = build_encrypted_index(&config, &docs, 777);
        index_key.cipher_key = 778; // wrong key
        let mut rng = seeded_rng(5);
        let client_key =
            ClientKey::generate(server.underhood(), server.underhood().lwe().n, &mut rng);
        let hits =
            search_encrypted(&index_key, &server, &client_key, &docs[0].embedding, 5, &mut rng);
        assert!(hits.is_empty(), "garbled blob must not decode");
    }
}
