//! The deployment's serving plane: per-shard batch coalescers that
//! let concurrently arriving queries share database scans.
//!
//! The paper saturates its servers with up to 19 closed-loop clients
//! (§8.1); Wally-style cross-user batching is what makes that scale —
//! `B` concurrent ranking queries answered in one pass over each
//! shard's matrix cost roughly one scan instead of `B`. The
//! [`ServingPlane`] puts one [`Coalescer`] in front of every ranking
//! shard (flushing through the batched
//! [`RankingService::shard_answer_many`] kernel) and one in front of
//! the URL server (flushing through the batched
//! [`tiptoe_pir::PirServer::answer_many`] kernel via
//! [`UrlService::answer_many`]).
//!
//! The plane is a *routing* layer under the typed service dispatch
//! (`tiptoe_net::dispatch`): requests still flow per-query through
//! the same accounting, fault, and span middleware; only the shard
//! compute is shared. Because the batched kernels are bit-identical
//! to their sequential counterparts, coalesced answers equal
//! sequential answers byte-for-byte at every batch size.
//!
//! The plane *borrows* the services, so it is built on demand
//! ([`crate::instance::TiptoeInstance::serving_plane`]) and dropped
//! before any mutable corpus update.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tiptoe_lwe::LweCiphertext;
use tiptoe_net::{
    AdmissionController, AdmissionPermit, AdmissionPolicy, BreakerBank, BreakerPolicy,
    BreakerState, CoalescePolicy, Coalescer, DeadlineBudget, LaneStatus, ServeError,
};
use tiptoe_underhood::{ExpandedSecret, QueryToken};

use crate::ranking::RankingService;
use crate::url::UrlService;

/// One client's coalesced token-fetch result: its per-shard ranking
/// tokens (in shard order, uncombined so both the combined and the
/// fault-tolerant client paths can be served) plus its URL token.
pub struct TokenBundle {
    /// Per-ranking-shard tokens, in shard order.
    pub rank_parts: Vec<QueryToken>,
    /// The URL service's token.
    pub url: QueryToken,
}

/// Batch coalescers over both services' shards, plus the plane's
/// overload-safety layers: an admission controller (bounded inflight
/// queries, deterministic shedding) and per-shard circuit breakers.
/// Shareable across client threads (`&ServingPlane` is `Send + Sync`).
pub struct ServingPlane<'a> {
    rank_lanes: Vec<Coalescer<'a, Vec<u64>, Vec<u64>>>,
    url_lane: Coalescer<'a, LweCiphertext<u32>, Vec<u32>>,
    token_lane: Coalescer<'a, Arc<ExpandedSecret>, TokenBundle>,
    admission: Option<AdmissionController>,
    breakers: Option<BreakerBank>,
    /// The plane-wide in-flight gauge shared by every lane (the solo
    /// fast path's cohort signal), kept here for introspection.
    cohort: Arc<AtomicUsize>,
}

impl<'a> ServingPlane<'a> {
    /// Builds one coalescing lane per ranking shard plus one for the
    /// URL server, with overload safety disabled (every query is
    /// admitted, no breakers).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn new(
        ranking: &'a RankingService,
        url: &'a UrlService,
        policy: CoalescePolicy,
    ) -> Self {
        Self::with_overload(
            ranking,
            url,
            policy,
            AdmissionPolicy::default(),
            BreakerPolicy::default(),
        )
    }

    /// [`ServingPlane::new`] with explicit overload-safety policies.
    ///
    /// When `admission.enabled`, the plane's concurrent-query capacity
    /// is derived from the observed batched-scan latency histogram
    /// (`net.coalesce.flush_us`) — or pinned by
    /// `admission.max_inflight` — and queries past
    /// `capacity + queue_depth` inflight are shed with a typed
    /// [`ServeError::Overloaded`]. When `breaker.enabled`, each
    /// ranking shard (and the URL server, addressed after them) gets a
    /// circuit breaker consulted by the fault-aware dispatch.
    ///
    /// # Panics
    ///
    /// Panics if any policy is invalid (use
    /// [`crate::config::TiptoeConfig::try_validate`] to surface this
    /// as a typed error at config-load time).
    pub fn with_overload(
        ranking: &'a RankingService,
        url: &'a UrlService,
        policy: CoalescePolicy,
        admission: AdmissionPolicy,
        breaker: BreakerPolicy,
    ) -> Self {
        policy.validate().expect("invalid coalescer policy");
        admission.validate().expect("invalid admission policy");
        breaker.validate().expect("invalid breaker policy");
        // One in-flight gauge across every lane in the plane: a query
        // crosses the lanes one at a time, so "am I alone?" (the solo
        // fast path) must be answered plane-wide — a momentarily empty
        // lane under concurrent load still has batch companions parked
        // in sibling lanes.
        let cohort = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let rank_lanes = (0..ranking.num_shards())
            .map(|idx| {
                Coalescer::new(policy, move |chunks: Vec<Vec<u64>>| {
                    ranking.shard_answer_many(idx, &chunks)
                })
                .with_cohort(cohort.clone())
            })
            .collect();
        let threads = ranking.parallelism().num_threads;
        let url_lane = Coalescer::new(policy, move |cts: Vec<LweCiphertext<u32>>| {
            url.answer_many(&cts, threads)
        })
        .with_cohort(cohort.clone());
        // Token generation coalesces too: it is the same
        // memory-bound shape as the scans (a pass over the hint
        // polynomials instead of the matrix), so `B` concurrent token
        // fetches share one pass per service through the batched
        // hint-evaluation kernels.
        let token_lane = Coalescer::new(policy, move |secrets: Vec<Arc<ExpandedSecret>>| {
            let refs: Vec<&ExpandedSecret> = secrets.iter().map(|a| a.as_ref()).collect();
            let rank = ranking.generate_token_parts_expanded_many(&refs);
            let url_tokens = url.generate_token_expanded_many(&refs, threads);
            rank.into_iter()
                .zip(url_tokens)
                .map(|(rank_parts, url)| TokenBundle { rank_parts, url })
                .collect()
        })
        .with_cohort(cohort.clone());
        let admission = admission.enabled.then(|| {
            let flush = tiptoe_obs::metrics().histogram("net.coalesce.flush_us");
            let capacity = admission.capacity_from_flush_histogram(&flush, policy.max_batch);
            AdmissionController::new(admission, capacity)
        });
        let breakers = breaker.enabled.then(|| BreakerBank::new(breaker, ranking.num_shards() + 1));
        Self { rank_lanes, url_lane, token_lane, admission, breakers, cohort }
    }

    /// Number of ranking lanes (one per shard).
    pub fn num_rank_lanes(&self) -> usize {
        self.rank_lanes.len()
    }

    /// The admission controller, when admission control is enabled.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// The per-shard circuit breakers, when breakers are enabled.
    /// Ranking shard `w` owns breaker `w`; the URL server owns breaker
    /// `W` (matching the fault plan's shared address space).
    pub fn breakers(&self) -> Option<&BreakerBank> {
        self.breakers.as_ref()
    }

    /// Admits one query, or sheds it. `Ok(None)` means admission
    /// control is disabled (nothing to hold); `Ok(Some(permit))` must
    /// be held for the query's duration — dropping the permit releases
    /// the inflight slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the plane is at
    /// `capacity + queue_depth` inflight queries. Shedding happens
    /// *before* any bytes move or tokens are consumed, so a shed query
    /// is a clean, costless retry for the client.
    pub fn admit(&self) -> Result<Option<AdmissionPermit<'_>>, ServeError> {
        match &self.admission {
            Some(ctrl) => ctrl.try_admit().map(Some),
            None => Ok(None),
        }
    }

    /// A fresh per-query deadline budget under the admission policy,
    /// or `None` when admission control is disabled (unbudgeted
    /// queries never deadline out).
    pub fn query_budget(&self) -> Option<DeadlineBudget> {
        self.admission.as_ref().map(|c| DeadlineBudget::new(c.policy().deadline))
    }

    /// Answers one ranking chunk through shard `idx`'s coalescing
    /// lane: the request is batched with concurrently arriving chunks
    /// and flushed through the batched kernel.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn rank_chunk(&self, idx: usize, chunk: Vec<u64>) -> Vec<u64> {
        self.rank_lanes[idx].submit(chunk)
    }

    /// [`ServingPlane::rank_chunk`] under a deadline: the request is
    /// withdrawn with a typed error if no flush answers it within
    /// `deadline`, and lane crashes surface as
    /// [`ServeError::LaneFailed`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] or [`ServeError::LaneFailed`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn rank_chunk_within(
        &self,
        idx: usize,
        chunk: Vec<u64>,
        deadline: Duration,
    ) -> Result<Vec<u64>, ServeError> {
        self.rank_lanes[idx].submit_within(chunk, deadline)
    }

    /// Generates one client's token bundle through the coalescing
    /// token lane: the expanded secret is batched with concurrently
    /// arriving clients' and every service's hint polynomials are read
    /// once for the whole batch. Each bundle is bit-identical to the
    /// direct per-client token generation.
    pub fn generate_tokens(&self, es: Arc<ExpandedSecret>) -> TokenBundle {
        self.token_lane.submit(es)
    }

    /// [`ServingPlane::generate_tokens`] under a deadline (see
    /// [`ServingPlane::rank_chunk_within`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] or [`ServeError::LaneFailed`].
    pub fn generate_tokens_within(
        &self,
        es: Arc<ExpandedSecret>,
        deadline: Duration,
    ) -> Result<TokenBundle, ServeError> {
        self.token_lane.submit_within(es, deadline)
    }

    /// Answers one URL PIR query through the coalescing lane.
    pub fn url_answer(&self, ct: LweCiphertext<u32>) -> Vec<u32> {
        self.url_lane.submit(ct)
    }

    /// [`ServingPlane::url_answer`] under a deadline (see
    /// [`ServingPlane::rank_chunk_within`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] or [`ServeError::LaneFailed`].
    pub fn url_answer_within(
        &self,
        ct: LweCiphertext<u32>,
        deadline: Duration,
    ) -> Result<Vec<u32>, ServeError> {
        self.url_lane.submit_within(ct, deadline)
    }

    /// A live introspection snapshot of the whole plane: per-lane
    /// occupancy, the plane-wide cohort gauge, breaker states,
    /// admission counters, key latency quantiles, and SLO burn rates.
    /// Values are instantaneous and unsynchronized — this is an
    /// operator's view, not a transcript.
    pub fn status(&self) -> PlaneStatus {
        let mut lanes: Vec<(String, LaneStatus)> = self
            .rank_lanes
            .iter()
            .enumerate()
            .map(|(w, l)| (format!("rank[{w}]"), l.lane_status()))
            .collect();
        lanes.push(("url".to_string(), self.url_lane.lane_status()));
        lanes.push(("token".to_string(), self.token_lane.lane_status()));
        let admission = self.admission.as_ref().map(|c| AdmissionStatus {
            capacity: c.capacity(),
            queue_depth: c.policy().queue_depth,
            inflight: c.inflight(),
            admitted: c.admitted(),
            sheds: c.sheds(),
        });
        let breakers = self
            .breakers
            .as_ref()
            .map(|b| (0..b.len()).map(|w| b.state(w)).collect())
            .unwrap_or_default();
        let registry = tiptoe_obs::metrics();
        let histograms = PlaneStatus::WATCHED_HISTOGRAMS
            .iter()
            .map(|&name| {
                let h = registry.histogram(name);
                HistogramStatus {
                    name,
                    count: h.count(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                    max: h.max(),
                }
            })
            .collect();
        let s = tiptoe_obs::slo::slo();
        let slo = SloStatus {
            shed_short: s.shed.rate_over(tiptoe_obs::slo::SHORT_WINDOW),
            shed_long: s.shed.rate_over(tiptoe_obs::slo::LONG_WINDOW),
            shed_total: s.shed.total(),
            miss_short: s.deadline_miss.rate_over(tiptoe_obs::slo::SHORT_WINDOW),
            miss_long: s.deadline_miss.rate_over(tiptoe_obs::slo::LONG_WINDOW),
            miss_total: s.deadline_miss.total(),
        };
        PlaneStatus {
            lanes,
            cohort: self.cohort.load(Ordering::SeqCst),
            admission,
            breakers,
            histograms,
            slo,
        }
    }
}

/// Admission-control counters in a [`PlaneStatus`] snapshot.
#[derive(Debug, Clone)]
pub struct AdmissionStatus {
    /// Derived concurrent-query capacity.
    pub capacity: usize,
    /// Extra arrivals tolerated past capacity before shedding.
    pub queue_depth: usize,
    /// Queries currently admitted and unfinished.
    pub inflight: usize,
    /// All-time admitted total.
    pub admitted: u64,
    /// All-time shed total.
    pub sheds: u64,
}

/// One watched latency histogram's quantiles in a [`PlaneStatus`]
/// snapshot (quantiles are bucket upper edges; `max` is exact).
#[derive(Debug, Clone)]
pub struct HistogramStatus {
    /// Registry name.
    pub name: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// SLO burn rates in a [`PlaneStatus`] snapshot: events per second
/// over the short (page-worthy) and long (ticket-worthy) windows.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// Shed rate over the short window (events/s).
    pub shed_short: f64,
    /// Shed rate over the long window (events/s).
    pub shed_long: f64,
    /// All-time sheds seen by the SLO counter.
    pub shed_total: u64,
    /// Deadline-miss rate over the short window (events/s).
    pub miss_short: f64,
    /// Deadline-miss rate over the long window (events/s).
    pub miss_long: f64,
    /// All-time deadline misses seen by the SLO counter.
    pub miss_total: u64,
}

/// A point-in-time introspection snapshot of a [`ServingPlane`]
/// (see [`ServingPlane::status`]); renders as JSON for exporters and
/// as a text panel for `tiptoe top`.
#[derive(Debug, Clone)]
pub struct PlaneStatus {
    /// Per-lane occupancy, labeled `rank[w]` / `url` / `token`.
    pub lanes: Vec<(String, LaneStatus)>,
    /// Plane-wide in-flight submitter count (the solo-path signal).
    pub cohort: usize,
    /// Admission counters, when admission control is enabled.
    pub admission: Option<AdmissionStatus>,
    /// Per-shard breaker states (ranking shards then the URL server),
    /// empty when breakers are disabled.
    pub breakers: Vec<BreakerState>,
    /// Quantiles of the watched latency histograms.
    pub histograms: Vec<HistogramStatus>,
    /// SLO burn rates.
    pub slo: SloStatus,
}

impl PlaneStatus {
    /// Histograms surfaced in every snapshot: batch formation, scan
    /// latency, queue wait, the adaptive wait the reactors arm, and
    /// per-shard response wall time under the fault plane.
    pub const WATCHED_HISTOGRAMS: [&'static str; 5] = [
        "net.coalesce.batch_size",
        "net.coalesce.flush_us",
        "net.coalesce.queue_wait_us",
        "net.coalesce.adaptive_wait_us",
        "net.shard_response_us",
    ];

    /// The snapshot as a self-contained JSON object (stable field
    /// names; numbers only — safe for any exporter).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"lanes\":[");
        for (i, (name, l)) in self.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"id\":{},\"queued\":{},\"inflight\":{},\
                 \"effective_wait_us\":{},\"max_wait_us\":{},\"max_batch\":{}}}",
                l.id,
                l.queued,
                l.inflight,
                l.effective_wait.as_micros(),
                l.max_wait.as_micros(),
                l.max_batch
            );
        }
        let _ = write!(out, "],\"cohort\":{}", self.cohort);
        match &self.admission {
            Some(a) => {
                let _ = write!(
                    out,
                    ",\"admission\":{{\"capacity\":{},\"queue_depth\":{},\"inflight\":{},\
                     \"admitted\":{},\"sheds\":{}}}",
                    a.capacity, a.queue_depth, a.inflight, a.admitted, a.sheds
                );
            }
            None => out.push_str(",\"admission\":null"),
        }
        out.push_str(",\"breakers\":[");
        for (i, b) in self.breakers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", b.as_str());
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                h.name, h.count, h.p50, h.p95, h.p99, h.max
            );
        }
        let s = &self.slo;
        let _ = write!(
            out,
            "],\"slo\":{{\"shed_short\":{:.6},\"shed_long\":{:.6},\"shed_total\":{},\
             \"miss_short\":{:.6},\"miss_long\":{:.6},\"miss_total\":{}}}}}",
            s.shed_short, s.shed_long, s.shed_total, s.miss_short, s.miss_long, s.miss_total
        );
        out
    }

    /// The snapshot as a fixed-width text panel (the `tiptoe top`
    /// view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "serving plane — cohort {} in flight", self.cohort);
        match &self.admission {
            Some(a) => {
                let _ = writeln!(
                    out,
                    "admission   {}/{} inflight (queue {})  admitted {}  shed {}",
                    a.inflight, a.capacity, a.queue_depth, a.admitted, a.sheds
                );
            }
            None => {
                let _ = writeln!(out, "admission   disabled");
            }
        }
        let _ = writeln!(
            out,
            "slo burn    shed {:.2}/s (10s) {:.2}/s (60s) total {}   miss {:.2}/s (10s) {:.2}/s (60s) total {}",
            self.slo.shed_short,
            self.slo.shed_long,
            self.slo.shed_total,
            self.slo.miss_short,
            self.slo.miss_long,
            self.slo.miss_total
        );
        if !self.breakers.is_empty() {
            let _ = write!(out, "breakers   ");
            for (w, b) in self.breakers.iter().enumerate() {
                let _ = write!(out, " {w}:{}", b.as_str());
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{:<10} {:>4} {:>6} {:>8} {:>12} {:>10} {:>9}",
            "lane", "id", "queued", "inflight", "eff_wait_us", "max_wait", "max_batch"
        );
        for (name, l) in &self.lanes {
            let _ = writeln!(
                out,
                "{:<10} {:>4} {:>6} {:>8} {:>12} {:>10} {:>9}",
                name,
                l.id,
                l.queued,
                l.inflight,
                l.effective_wait.as_micros(),
                l.max_wait.as_micros(),
                l.max_batch
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "histogram", "count", "p50", "p95", "p99", "max"
        );
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}",
                h.name, h.count, h.p50, h.p95, h.p99, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use rand::Rng;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;
    use tiptoe_math::rng::seeded_rng;
    use tiptoe_underhood::{ClientKey, EncryptedSecret};

    use crate::config::TiptoeConfig;
    use crate::instance::TiptoeInstance;

    #[test]
    fn coalesced_token_fetches_are_bit_identical() {
        let corpus = generate(&CorpusConfig::small(150, 74), 0);
        let config = TiptoeConfig::test_small(150, 74);
        let embedder = TextEmbedder::new(config.d_embed, 74, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let plane = instance.serving_plane();

        let mut rng = seeded_rng(29);
        let uh = instance.ranking.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        let es = EncryptedSecret::encrypt(uh, &key, &mut rng);

        // Direct per-client generation vs the plane's token lane, from
        // the same upload (expansion is deterministic).
        let (direct_parts, _) = instance.ranking.generate_token_parts_expanded(&es.expand(uh));
        let (direct_url, _) = instance.url.generate_token_expanded(&es.expand(uh));
        let bundle = plane.generate_tokens(std::sync::Arc::new(es.expand(uh)));
        assert_eq!(bundle.rank_parts.len(), direct_parts.len());
        for (got, want) in bundle.rank_parts.iter().zip(direct_parts.iter()) {
            assert_eq!(got.encode(), want.encode(), "coalesced rank token differs");
        }
        assert_eq!(bundle.url.encode(), direct_url.encode(), "coalesced URL token differs");
    }

    #[test]
    fn status_snapshot_reflects_plane_shape() {
        let corpus = generate(&CorpusConfig::small(150, 74), 0);
        let config = TiptoeConfig::test_small(150, 74);
        let embedder = TextEmbedder::new(config.d_embed, 74, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let plane = instance.serving_plane();

        let status = plane.status();
        // One lane per ranking shard plus the URL and token lanes.
        assert_eq!(status.lanes.len(), plane.num_rank_lanes() + 2);
        assert_eq!(status.lanes[plane.num_rank_lanes()].0, "url");
        assert_eq!(status.lanes[plane.num_rank_lanes() + 1].0, "token");
        // An idle plane has nothing queued or in flight.
        assert_eq!(status.cohort, 0);
        for (name, lane) in &status.lanes {
            assert_eq!(lane.queued, 0, "lane {name} queued");
            assert_eq!(lane.inflight, 0, "lane {name} inflight");
            assert!(lane.max_batch >= 1);
        }
        assert_eq!(
            status.histograms.len(),
            crate::serving::PlaneStatus::WATCHED_HISTOGRAMS.len()
        );

        // Both renderings are self-contained and name every lane.
        let json = status.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "json: {json}");
        for key in ["\"lanes\"", "\"cohort\"", "\"admission\"", "\"breakers\"", "\"slo\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = status.render();
        assert!(text.contains("serving plane"));
        assert!(text.contains("url"), "render lists the url lane:\n{text}");
        assert!(text.contains("net.coalesce.flush_us"), "render lists histograms:\n{text}");
    }

    #[test]
    fn coalesced_shard_answers_are_bit_identical() {
        let corpus = generate(&CorpusConfig::small(150, 74), 0);
        let config = TiptoeConfig::test_small(150, 74);
        let embedder = TextEmbedder::new(config.d_embed, 74, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let service = &instance.ranking;
        let plane = instance.serving_plane();

        let mut rng = seeded_rng(11);
        let uh = service.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        let cts: Vec<_> = (0..3)
            .map(|_| {
                let v: Vec<u64> = (0..service.upload_dim())
                    .map(|_| rng.gen_range(0..config.rank_lwe.p))
                    .collect();
                uh.encrypt_query::<u64, _>(&key, &service.public_matrix(), &v, &mut rng)
            })
            .collect();

        // Concurrent full-ciphertext answers through the plane equal
        // the sequential service answers exactly.
        let coalesced: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = cts
                .iter()
                .map(|ct| {
                    let plane = &plane;
                    scope.spawn(move || {
                        let (answer, _) = service.answer_via(ct, Some(plane));
                        answer
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for (ct, got) in cts.iter().zip(coalesced.iter()) {
            let (sequential, _) = service.answer(ct);
            assert_eq!(&sequential, got, "coalesced answers must be bit-identical");
        }
    }
}
