//! The deployment's serving plane: per-shard batch coalescers that
//! let concurrently arriving queries share database scans.
//!
//! The paper saturates its servers with up to 19 closed-loop clients
//! (§8.1); Wally-style cross-user batching is what makes that scale —
//! `B` concurrent ranking queries answered in one pass over each
//! shard's matrix cost roughly one scan instead of `B`. The
//! [`ServingPlane`] puts one [`Coalescer`] in front of every ranking
//! shard (flushing through the batched
//! [`RankingService::shard_answer_many`] kernel) and one in front of
//! the URL server (flushing through the batched
//! [`tiptoe_pir::PirServer::answer_many`] kernel via
//! [`UrlService::answer_many`]).
//!
//! The plane is a *routing* layer under the typed service dispatch
//! (`tiptoe_net::dispatch`): requests still flow per-query through
//! the same accounting, fault, and span middleware; only the shard
//! compute is shared. Because the batched kernels are bit-identical
//! to their sequential counterparts, coalesced answers equal
//! sequential answers byte-for-byte at every batch size.
//!
//! The plane *borrows* the services, so it is built on demand
//! ([`crate::instance::TiptoeInstance::serving_plane`]) and dropped
//! before any mutable corpus update.

use std::sync::Arc;
use std::time::Duration;

use tiptoe_lwe::LweCiphertext;
use tiptoe_net::{
    AdmissionController, AdmissionPermit, AdmissionPolicy, BreakerBank, BreakerPolicy,
    CoalescePolicy, Coalescer, DeadlineBudget, ServeError,
};
use tiptoe_underhood::{ExpandedSecret, QueryToken};

use crate::ranking::RankingService;
use crate::url::UrlService;

/// One client's coalesced token-fetch result: its per-shard ranking
/// tokens (in shard order, uncombined so both the combined and the
/// fault-tolerant client paths can be served) plus its URL token.
pub struct TokenBundle {
    /// Per-ranking-shard tokens, in shard order.
    pub rank_parts: Vec<QueryToken>,
    /// The URL service's token.
    pub url: QueryToken,
}

/// Batch coalescers over both services' shards, plus the plane's
/// overload-safety layers: an admission controller (bounded inflight
/// queries, deterministic shedding) and per-shard circuit breakers.
/// Shareable across client threads (`&ServingPlane` is `Send + Sync`).
pub struct ServingPlane<'a> {
    rank_lanes: Vec<Coalescer<'a, Vec<u64>, Vec<u64>>>,
    url_lane: Coalescer<'a, LweCiphertext<u32>, Vec<u32>>,
    token_lane: Coalescer<'a, Arc<ExpandedSecret>, TokenBundle>,
    admission: Option<AdmissionController>,
    breakers: Option<BreakerBank>,
}

impl<'a> ServingPlane<'a> {
    /// Builds one coalescing lane per ranking shard plus one for the
    /// URL server, with overload safety disabled (every query is
    /// admitted, no breakers).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn new(
        ranking: &'a RankingService,
        url: &'a UrlService,
        policy: CoalescePolicy,
    ) -> Self {
        Self::with_overload(
            ranking,
            url,
            policy,
            AdmissionPolicy::default(),
            BreakerPolicy::default(),
        )
    }

    /// [`ServingPlane::new`] with explicit overload-safety policies.
    ///
    /// When `admission.enabled`, the plane's concurrent-query capacity
    /// is derived from the observed batched-scan latency histogram
    /// (`net.coalesce.flush_us`) — or pinned by
    /// `admission.max_inflight` — and queries past
    /// `capacity + queue_depth` inflight are shed with a typed
    /// [`ServeError::Overloaded`]. When `breaker.enabled`, each
    /// ranking shard (and the URL server, addressed after them) gets a
    /// circuit breaker consulted by the fault-aware dispatch.
    ///
    /// # Panics
    ///
    /// Panics if any policy is invalid (use
    /// [`crate::config::TiptoeConfig::try_validate`] to surface this
    /// as a typed error at config-load time).
    pub fn with_overload(
        ranking: &'a RankingService,
        url: &'a UrlService,
        policy: CoalescePolicy,
        admission: AdmissionPolicy,
        breaker: BreakerPolicy,
    ) -> Self {
        policy.validate().expect("invalid coalescer policy");
        admission.validate().expect("invalid admission policy");
        breaker.validate().expect("invalid breaker policy");
        // One in-flight gauge across every lane in the plane: a query
        // crosses the lanes one at a time, so "am I alone?" (the solo
        // fast path) must be answered plane-wide — a momentarily empty
        // lane under concurrent load still has batch companions parked
        // in sibling lanes.
        let cohort = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let rank_lanes = (0..ranking.num_shards())
            .map(|idx| {
                Coalescer::new(policy, move |chunks: Vec<Vec<u64>>| {
                    ranking.shard_answer_many(idx, &chunks)
                })
                .with_cohort(cohort.clone())
            })
            .collect();
        let threads = ranking.parallelism().num_threads;
        let url_lane = Coalescer::new(policy, move |cts: Vec<LweCiphertext<u32>>| {
            url.answer_many(&cts, threads)
        })
        .with_cohort(cohort.clone());
        // Token generation coalesces too: it is the same
        // memory-bound shape as the scans (a pass over the hint
        // polynomials instead of the matrix), so `B` concurrent token
        // fetches share one pass per service through the batched
        // hint-evaluation kernels.
        let token_lane = Coalescer::new(policy, move |secrets: Vec<Arc<ExpandedSecret>>| {
            let refs: Vec<&ExpandedSecret> = secrets.iter().map(|a| a.as_ref()).collect();
            let rank = ranking.generate_token_parts_expanded_many(&refs);
            let url_tokens = url.generate_token_expanded_many(&refs, threads);
            rank.into_iter()
                .zip(url_tokens)
                .map(|(rank_parts, url)| TokenBundle { rank_parts, url })
                .collect()
        })
        .with_cohort(cohort);
        let admission = admission.enabled.then(|| {
            let flush = tiptoe_obs::metrics().histogram("net.coalesce.flush_us");
            let capacity = admission.capacity_from_flush_histogram(&flush, policy.max_batch);
            AdmissionController::new(admission, capacity)
        });
        let breakers = breaker.enabled.then(|| BreakerBank::new(breaker, ranking.num_shards() + 1));
        Self { rank_lanes, url_lane, token_lane, admission, breakers }
    }

    /// Number of ranking lanes (one per shard).
    pub fn num_rank_lanes(&self) -> usize {
        self.rank_lanes.len()
    }

    /// The admission controller, when admission control is enabled.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// The per-shard circuit breakers, when breakers are enabled.
    /// Ranking shard `w` owns breaker `w`; the URL server owns breaker
    /// `W` (matching the fault plan's shared address space).
    pub fn breakers(&self) -> Option<&BreakerBank> {
        self.breakers.as_ref()
    }

    /// Admits one query, or sheds it. `Ok(None)` means admission
    /// control is disabled (nothing to hold); `Ok(Some(permit))` must
    /// be held for the query's duration — dropping the permit releases
    /// the inflight slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the plane is at
    /// `capacity + queue_depth` inflight queries. Shedding happens
    /// *before* any bytes move or tokens are consumed, so a shed query
    /// is a clean, costless retry for the client.
    pub fn admit(&self) -> Result<Option<AdmissionPermit<'_>>, ServeError> {
        match &self.admission {
            Some(ctrl) => ctrl.try_admit().map(Some),
            None => Ok(None),
        }
    }

    /// A fresh per-query deadline budget under the admission policy,
    /// or `None` when admission control is disabled (unbudgeted
    /// queries never deadline out).
    pub fn query_budget(&self) -> Option<DeadlineBudget> {
        self.admission.as_ref().map(|c| DeadlineBudget::new(c.policy().deadline))
    }

    /// Answers one ranking chunk through shard `idx`'s coalescing
    /// lane: the request is batched with concurrently arriving chunks
    /// and flushed through the batched kernel.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn rank_chunk(&self, idx: usize, chunk: Vec<u64>) -> Vec<u64> {
        self.rank_lanes[idx].submit(chunk)
    }

    /// [`ServingPlane::rank_chunk`] under a deadline: the request is
    /// withdrawn with a typed error if no flush answers it within
    /// `deadline`, and lane crashes surface as
    /// [`ServeError::LaneFailed`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] or [`ServeError::LaneFailed`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn rank_chunk_within(
        &self,
        idx: usize,
        chunk: Vec<u64>,
        deadline: Duration,
    ) -> Result<Vec<u64>, ServeError> {
        self.rank_lanes[idx].submit_within(chunk, deadline)
    }

    /// Generates one client's token bundle through the coalescing
    /// token lane: the expanded secret is batched with concurrently
    /// arriving clients' and every service's hint polynomials are read
    /// once for the whole batch. Each bundle is bit-identical to the
    /// direct per-client token generation.
    pub fn generate_tokens(&self, es: Arc<ExpandedSecret>) -> TokenBundle {
        self.token_lane.submit(es)
    }

    /// [`ServingPlane::generate_tokens`] under a deadline (see
    /// [`ServingPlane::rank_chunk_within`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] or [`ServeError::LaneFailed`].
    pub fn generate_tokens_within(
        &self,
        es: Arc<ExpandedSecret>,
        deadline: Duration,
    ) -> Result<TokenBundle, ServeError> {
        self.token_lane.submit_within(es, deadline)
    }

    /// Answers one URL PIR query through the coalescing lane.
    pub fn url_answer(&self, ct: LweCiphertext<u32>) -> Vec<u32> {
        self.url_lane.submit(ct)
    }

    /// [`ServingPlane::url_answer`] under a deadline (see
    /// [`ServingPlane::rank_chunk_within`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] or [`ServeError::LaneFailed`].
    pub fn url_answer_within(
        &self,
        ct: LweCiphertext<u32>,
        deadline: Duration,
    ) -> Result<Vec<u32>, ServeError> {
        self.url_lane.submit_within(ct, deadline)
    }
}

#[cfg(test)]
mod tests {
    use rand::Rng;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;
    use tiptoe_math::rng::seeded_rng;
    use tiptoe_underhood::{ClientKey, EncryptedSecret};

    use crate::config::TiptoeConfig;
    use crate::instance::TiptoeInstance;

    #[test]
    fn coalesced_token_fetches_are_bit_identical() {
        let corpus = generate(&CorpusConfig::small(150, 74), 0);
        let config = TiptoeConfig::test_small(150, 74);
        let embedder = TextEmbedder::new(config.d_embed, 74, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let plane = instance.serving_plane();

        let mut rng = seeded_rng(29);
        let uh = instance.ranking.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        let es = EncryptedSecret::encrypt(uh, &key, &mut rng);

        // Direct per-client generation vs the plane's token lane, from
        // the same upload (expansion is deterministic).
        let (direct_parts, _) = instance.ranking.generate_token_parts_expanded(&es.expand(uh));
        let (direct_url, _) = instance.url.generate_token_expanded(&es.expand(uh));
        let bundle = plane.generate_tokens(std::sync::Arc::new(es.expand(uh)));
        assert_eq!(bundle.rank_parts.len(), direct_parts.len());
        for (got, want) in bundle.rank_parts.iter().zip(direct_parts.iter()) {
            assert_eq!(got.encode(), want.encode(), "coalesced rank token differs");
        }
        assert_eq!(bundle.url.encode(), direct_url.encode(), "coalesced URL token differs");
    }

    #[test]
    fn coalesced_shard_answers_are_bit_identical() {
        let corpus = generate(&CorpusConfig::small(150, 74), 0);
        let config = TiptoeConfig::test_small(150, 74);
        let embedder = TextEmbedder::new(config.d_embed, 74, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let service = &instance.ranking;
        let plane = instance.serving_plane();

        let mut rng = seeded_rng(11);
        let uh = service.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        let cts: Vec<_> = (0..3)
            .map(|_| {
                let v: Vec<u64> = (0..service.upload_dim())
                    .map(|_| rng.gen_range(0..config.rank_lwe.p))
                    .collect();
                uh.encrypt_query::<u64, _>(&key, &service.public_matrix(), &v, &mut rng)
            })
            .collect();

        // Concurrent full-ciphertext answers through the plane equal
        // the sequential service answers exactly.
        let coalesced: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = cts
                .iter()
                .map(|ct| {
                    let plane = &plane;
                    scope.spawn(move || {
                        let (answer, _) = service.answer_via(ct, Some(plane));
                        answer
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for (ct, got) in cts.iter().zip(coalesced.iter()) {
            let (sequential, _) = service.answer(ct);
            assert_eq!(&sequential, got, "coalesced answers must be bit-identical");
        }
    }
}
