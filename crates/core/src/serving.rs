//! The deployment's serving plane: per-shard batch coalescers that
//! let concurrently arriving queries share database scans.
//!
//! The paper saturates its servers with up to 19 closed-loop clients
//! (§8.1); Wally-style cross-user batching is what makes that scale —
//! `B` concurrent ranking queries answered in one pass over each
//! shard's matrix cost roughly one scan instead of `B`. The
//! [`ServingPlane`] puts one [`Coalescer`] in front of every ranking
//! shard (flushing through the batched
//! [`RankingService::shard_answer_many`] kernel) and one in front of
//! the URL server (flushing through the batched
//! [`tiptoe_pir::PirServer::answer_many`] kernel via
//! [`UrlService::answer_many`]).
//!
//! The plane is a *routing* layer under the typed service dispatch
//! (`tiptoe_net::dispatch`): requests still flow per-query through
//! the same accounting, fault, and span middleware; only the shard
//! compute is shared. Because the batched kernels are bit-identical
//! to their sequential counterparts, coalesced answers equal
//! sequential answers byte-for-byte at every batch size.
//!
//! The plane *borrows* the services, so it is built on demand
//! ([`crate::instance::TiptoeInstance::serving_plane`]) and dropped
//! before any mutable corpus update.

use tiptoe_lwe::LweCiphertext;
use tiptoe_net::{CoalescePolicy, Coalescer};

use crate::ranking::RankingService;
use crate::url::UrlService;

/// Batch coalescers over both services' shards. Shareable across
/// client threads (`&ServingPlane` is `Send + Sync`).
pub struct ServingPlane<'a> {
    rank_lanes: Vec<Coalescer<'a, Vec<u64>, Vec<u64>>>,
    url_lane: Coalescer<'a, LweCiphertext<u32>, Vec<u32>>,
}

impl<'a> ServingPlane<'a> {
    /// Builds one coalescing lane per ranking shard plus one for the
    /// URL server.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn new(
        ranking: &'a RankingService,
        url: &'a UrlService,
        policy: CoalescePolicy,
    ) -> Self {
        policy.validate();
        let rank_lanes = (0..ranking.num_shards())
            .map(|idx| {
                Coalescer::new(policy, move |chunks: Vec<Vec<u64>>| {
                    ranking.shard_answer_many(idx, &chunks)
                })
            })
            .collect();
        let threads = ranking.parallelism().num_threads;
        let url_lane = Coalescer::new(policy, move |cts: Vec<LweCiphertext<u32>>| {
            url.answer_many(&cts, threads)
        });
        Self { rank_lanes, url_lane }
    }

    /// Number of ranking lanes (one per shard).
    pub fn num_rank_lanes(&self) -> usize {
        self.rank_lanes.len()
    }

    /// Answers one ranking chunk through shard `idx`'s coalescing
    /// lane: the request is batched with concurrently arriving chunks
    /// and flushed through the batched kernel.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn rank_chunk(&self, idx: usize, chunk: Vec<u64>) -> Vec<u64> {
        self.rank_lanes[idx].submit(chunk)
    }

    /// Answers one URL PIR query through the coalescing lane.
    pub fn url_answer(&self, ct: LweCiphertext<u32>) -> Vec<u32> {
        self.url_lane.submit(ct)
    }
}

#[cfg(test)]
mod tests {
    use rand::Rng;
    use tiptoe_corpus::synth::{generate, CorpusConfig};
    use tiptoe_embed::text::TextEmbedder;
    use tiptoe_math::rng::seeded_rng;
    use tiptoe_underhood::ClientKey;

    use crate::config::TiptoeConfig;
    use crate::instance::TiptoeInstance;

    #[test]
    fn coalesced_shard_answers_are_bit_identical() {
        let corpus = generate(&CorpusConfig::small(150, 74), 0);
        let config = TiptoeConfig::test_small(150, 74);
        let embedder = TextEmbedder::new(config.d_embed, 74, 0);
        let instance = TiptoeInstance::build(&config, embedder, &corpus);
        let service = &instance.ranking;
        let plane = instance.serving_plane();

        let mut rng = seeded_rng(11);
        let uh = service.underhood();
        let key = ClientKey::generate(uh, config.rank_lwe.n, &mut rng);
        let cts: Vec<_> = (0..3)
            .map(|_| {
                let v: Vec<u64> = (0..service.upload_dim())
                    .map(|_| rng.gen_range(0..config.rank_lwe.p))
                    .collect();
                uh.encrypt_query::<u64, _>(&key, &service.public_matrix(), &v, &mut rng)
            })
            .collect();

        // Concurrent full-ciphertext answers through the plane equal
        // the sequential service answers exactly.
        let coalesced: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = cts
                .iter()
                .map(|ct| {
                    let plane = &plane;
                    scope.spawn(move || {
                        let (answer, _) = service.answer_via(ct, Some(plane));
                        answer
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for (ct, got) in cts.iter().zip(coalesced.iter()) {
            let (sequential, _) = service.answer(ct);
            assert_eq!(&sequential, got, "coalesced answers must be bit-identical");
        }
    }
}
