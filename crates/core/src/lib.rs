//! Tiptoe: private web search (SOSP 2023), reproduced in Rust.
//!
//! This crate assembles the full system of the paper on top of the
//! workspace's substrates:
//!
//! - [`config`] — deployment parameters (paper-faithful text/image
//!   presets and a scaled-down test preset).
//! - [`batch`] — the data-loading batch jobs of §3.2: embed, reduce
//!   (PCA), cluster, quantize, lay out the ranking matrix, batch and
//!   compress URLs, and preprocess all cryptographic hints.
//! - [`ranking`] — the private ranking service of §4: the sharded
//!   nearest-neighbor protocol over linearly homomorphic encryption.
//! - [`url`] — the URL service of §5: SimplePIR retrieval of
//!   compressed, content-grouped URL batches.
//! - [`client`] — the Tiptoe client: local embedding + cluster
//!   selection, token prefetch (§6.3), encrypted queries, decryption,
//!   and result assembly, with exact per-phase cost accounting.
//! - [`instance`] — a whole deployment (both services + the client
//!   bundle) built from a corpus in one call.
//! - [`serving`] — the serving plane: per-shard batch coalescers that
//!   let concurrently arriving queries share database scans (typed
//!   dispatch itself lives in `tiptoe-net`).
//! - [`analysis`] — the analytic cost models behind Table 6, Figure 8,
//!   and Figure 9 (Coeus scaling, client-side-index baselines, AWS
//!   prices, web-scale extrapolation).
//! - [`keyword`] — the §9 exact-keyword-search extension (private
//!   key-value lookups for phone numbers, addresses, …).
//! - [`recommend`] — the §9 private-recommendations extension.
//! - [`encrypted`] — the §9 search-over-encrypted-documents extension
//!   (client-indexed corpus, PIR-fetched encrypted cluster blobs).
//! - [`noncolluding`] — the §9 two-server mode: DPF-shared queries
//!   over plaintext replicas, ~1 MiB/query instead of tens of MiB.
//! - [`ads`] — the §9 private-advertising extension.
//!
//! # Quickstart
//!
//! ```no_run
//! use tiptoe_core::config::TiptoeConfig;
//! use tiptoe_core::instance::TiptoeInstance;
//! use tiptoe_corpus::synth::{generate, CorpusConfig};
//! use tiptoe_embed::text::TextEmbedder;
//!
//! let corpus = generate(&CorpusConfig::small(1000, 7), 0);
//! let embedder = TextEmbedder::new(128, 7, 0);
//! let config = TiptoeConfig::test_small(corpus.docs.len(), 42);
//! let mut instance = TiptoeInstance::build(&config, &embedder, &corpus);
//! let mut client = instance.new_client(1);
//! let results = client.search(&mut instance, "museum opening hours", 10);
//! for hit in &results.hits {
//!     println!("{} {}", hit.url, hit.score);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ads;
pub mod analysis;
pub mod batch;
pub mod client;
pub mod config;
pub mod encrypted;
pub mod instance;
pub mod keyword;
pub mod noncolluding;
pub mod ranking;
pub mod recommend;
pub mod serving;
pub mod throughput;
pub mod update;
pub mod url;
