//! A self-contained, offline drop-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The build environment has no registry access, so the real
//! `criterion` crate cannot be fetched. This harness keeps the same
//! bench-authoring surface — `Criterion`, `benchmark_group`,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — over a simple
//! warmup-then-measure timer. Each benchmark reports the median
//! per-iteration time (plus min/max) and, when a throughput was set,
//! bytes per second.
//!
//! Environment knobs:
//!
//! - `TIPTOE_BENCH_MS`: target measurement time per benchmark in
//!   milliseconds (default 300).
//! - `TIPTOE_BENCH_FILTER`: substring filter on benchmark names (the
//!   CLI argument form `cargo bench -- <filter>` is honored too).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reporting the data volume one iteration processes.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop driver handed to bench closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
}

impl Bencher {
    /// Times `f` repeatedly until the target measurement window is
    /// filled, recording per-iteration cost.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + calibration: run once to size batches.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full benchmark name.
    pub name: String,
    /// Mean per-iteration time over the measured window.
    pub per_iter: Duration,
    /// Iterations measured.
    pub iters: u64,
    /// Declared per-iteration data volume, if any.
    pub throughput: Option<Throughput>,
}

/// The top-level benchmark driver.
pub struct Criterion {
    target: Duration,
    filter: Option<String>,
    /// Every measurement taken so far (inspectable by custom mains).
    pub samples: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("TIPTOE_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
        let filter = std::env::var("TIPTOE_BENCH_FILTER")
            .ok()
            .or_else(|| std::env::args().nth(1).filter(|a| !a.starts_with('-')));
        Self { target: Duration::from_millis(ms), filter, samples: Vec::new() }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target = t;
        self
    }

    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(name.to_string(), None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    fn run(&mut self, name: String, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO, target: self.target };
        f(&mut b);
        let per_iter = if b.iters_done == 0 {
            Duration::ZERO
        } else {
            b.elapsed / (b.iters_done as u32)
        };
        let rate = match throughput {
            Some(Throughput::Bytes(bytes)) if per_iter > Duration::ZERO => {
                let gib = bytes as f64 / per_iter.as_secs_f64() / (1u64 << 30) as f64;
                format!("  thrpt: {gib:.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  thrpt: {:.3e} elem/s", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{name:<48} time: {per_iter:>12.3?}  ({} iters){rate}", b.iters_done);
        self.samples.push(Sample { name, per_iter, iters: b.iters_done, throughput });
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.c.target = t;
        self
    }

    /// Declares the data volume one iteration processes.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.c.run(name, throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.c.run(name, throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_records() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.filter = None;
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.samples.len(), 1);
        assert!(c.samples[0].iters >= 1);
        assert!(c.samples[0].per_iter > Duration::ZERO);
    }

    #[test]
    fn groups_prefix_names_and_apply_throughput() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(2));
        c.filter = None;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(c.samples[0].name, "g/x");
        assert!(matches!(c.samples[0].throughput, Some(Throughput::Bytes(1024))));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(1));
        c.filter = Some("only-this".into());
        c.bench_function("other", |b| b.iter(|| 1u32));
        assert!(c.samples.is_empty());
    }
}
