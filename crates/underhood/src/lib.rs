//! The composed linearly homomorphic encryption scheme with outsourced
//! hint decryption (paper §6.2–§6.3 and Appendix A).
//!
//! Plain SimplePIR decryption needs the client to hold the hint
//! `H = M·A` — gigabytes that change whenever the corpus does. Tiptoe
//! instead has the *server* evaluate the linear part of decryption,
//! `H·s`, under a second (ring-LWE) encryption scheme:
//!
//! 1. Ahead of time, the client uploads `Enc2(s)` — one outer
//!    ciphertext per entry of the inner secret key (the `z_i` of
//!    Appendix A). This upload is query-independent.
//! 2. The server computes `Enc2(H·s)` homomorphically and returns it.
//!    This response is the **query token** (§6.3); it depends only on
//!    the corpus and the client's key, so it is generated and
//!    downloaded before the client has decided on its query.
//! 3. Online, the client sends only the inner Regev ciphertext and
//!    downloads the raw `M·ct` words; it decrypts using the token.
//!
//! Two concrete tricks from Appendix A.3 are implemented faithfully:
//!
//! - **Dropping low-order hint bits.** Inner decryption rounds away
//!   everything below `Δ/2`, so the server keeps only the top
//!   `log q − κ` bits of each hint entry, with `κ` chosen so the
//!   dropped mass `n·2^κ` stays within the rounding budget. This
//!   shrinks token-generation work and token size, exactly as the
//!   paper's "dropping the lowest-order bits of the hint matrix".
//! - **Exact limb recombination.** The surviving high bits are split
//!   into 16-bit limbs; each limb's product with the ternary secret is
//!   a sum of at most `n ≤ 2048` terms of magnitude `< 2^16`, which
//!   fits the outer plaintext modulus `t = 2^28` *without wraparound*,
//!   so the client reassembles `H·s mod 2^(log q − κ)` exactly.
//!   (`DESIGN.md` §2 documents how this deviates from the paper's SEAL
//!   instantiation.)
//!
//! A token is single-use: reusing it would encrypt two query vectors
//! under the same inner secret, which breaks semantic security (§6.3).
//! [`DecodedToken::take_hs`] enforces this at the type level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
use tiptoe_lwe::{scheme, LweCiphertext, LweParams, LweSecretKey, MatrixA};
use tiptoe_math::matrix::Mat;
use tiptoe_math::poly::Poly;
use tiptoe_math::wire::{WireError, WireReader, WireWriter};
use tiptoe_math::zq::Word;
use tiptoe_math::ntt::ShoupPoly;
use tiptoe_rlwe::{
    decrypt_switched, encrypt_scalar, expand, mod_switch, RlweCiphertext, RlweContext,
    RlweParams, RlweSecretKey, SeededRlweCiphertext, SwitchedCiphertext,
};

/// Dropped hint mass must stay below `Δ / 2^DROP_BUDGET_SHIFT`,
/// leaving the rest of the `Δ/2` rounding budget to the inner noise
/// (with shift 4, the ranking parameters still support the paper's
/// `m = 2^21` upload dimension).
const DROP_BUDGET_SHIFT: u32 = 4;

/// The composed scheme: inner LWE parameters plus the shared outer
/// RLWE context and the derived bit-dropping/limb layout.
#[derive(Debug, Clone)]
pub struct Underhood {
    lwe: LweParams,
    ctx: RlweContext,
    /// Low hint bits dropped before outsourcing (`κ`).
    kappa: u32,
    /// Number of 16-bit limbs covering the surviving `log q − κ` bits.
    limbs: u32,
    /// Modulus-switch target for token download compression.
    switch_log_q2: u32,
}

impl Underhood {
    /// Builds the composed scheme with the production outer parameters.
    pub fn new(lwe: LweParams) -> Self {
        Self::with_outer(lwe, RlweParams::production(), 44)
    }

    /// Builds the composed scheme with explicit outer parameters (used
    /// by tests with scaled-down rings).
    ///
    /// # Panics
    ///
    /// Panics if a limb sum could wrap the outer plaintext modulus
    /// (`n · 2^16 ≥ t/2`) or if no valid `κ` exists.
    pub fn with_outer(lwe: LweParams, rlwe: RlweParams, switch_log_q2: u32) -> Self {
        lwe.validate();
        // Limb values are at most 2^16 - 1, so the exact no-wrap
        // condition is n·(2^16 - 1) < t/2 (met with ~2000 words of
        // slack by n = 2048, t = 2^28).
        assert!(
            (lwe.n as u128) * 0xffff < (rlwe.t as u128) / 2,
            "outer plaintext modulus too small for exact limb sums (n = {}, t = {})",
            lwe.n,
            rlwe.t
        );
        let delta = lwe.delta();
        // n · 2^κ ≤ Δ / 2^DROP_BUDGET_SHIFT.
        let budget = delta >> DROP_BUDGET_SHIFT;
        let per_entry = budget / lwe.n as u64;
        assert!(per_entry >= 1, "no room to drop hint bits; Δ too small for n");
        let kappa = 63 - per_entry.leading_zeros();
        let kept = lwe.log_q - kappa.min(lwe.log_q - 1);
        let kappa = lwe.log_q - kept;
        let limbs = kept.div_ceil(16);
        let ctx = RlweContext::new(rlwe);
        Self { lwe, ctx, kappa, limbs, switch_log_q2 }
    }

    /// The inner LWE parameters.
    pub fn lwe(&self) -> &LweParams {
        &self.lwe
    }

    /// The outer RLWE context.
    pub fn outer(&self) -> &RlweContext {
        &self.ctx
    }

    /// Number of dropped low-order hint bits (`κ`).
    pub fn dropped_bits(&self) -> u32 {
        self.kappa
    }

    /// Number of 16-bit hint limbs.
    pub fn limb_count(&self) -> u32 {
        self.limbs
    }

    /// Extracts limb `j` of a hint entry after dropping `κ` bits.
    #[inline]
    fn limb(&self, h: u64, j: u32) -> u64 {
        (h >> (self.kappa + 16 * j)) & 0xffff
    }
}

/// The client's composite key: the inner ternary secret and the outer
/// ring key. One inner secret can serve several services (paper §A.3,
/// "using the same secret key for both services"): services with a
/// smaller secret dimension use a prefix of `ternary`.
#[derive(Debug, Clone)]
pub struct ClientKey {
    ternary: Vec<i64>,
    rlwe_sk: RlweSecretKey,
}

impl ClientKey {
    /// Samples a fresh composite key with an inner secret of dimension
    /// `max_n`.
    pub fn generate<R: Rng + ?Sized>(uh: &Underhood, max_n: usize, rng: &mut R) -> Self {
        let ternary = tiptoe_math::sample::ternary_vec(rng, max_n);
        let rlwe_sk = RlweSecretKey::generate(uh.outer(), rng);
        Self { ternary, rlwe_sk }
    }

    /// The inner secret key for a service with parameters `params`
    /// (a prefix of the shared ternary vector).
    ///
    /// # Panics
    ///
    /// Panics if `params.n` exceeds the generated secret dimension.
    pub fn lwe_key<W: Word>(&self, params: &LweParams) -> LweSecretKey<W> {
        assert!(params.n <= self.ternary.len(), "secret dimension too large for this key");
        LweSecretKey::from_ternary(params, &self.ternary[..params.n])
    }

    /// The outer ring key.
    pub fn rlwe_key(&self) -> &RlweSecretKey {
        &self.rlwe_sk
    }

    /// Inner secret dimension.
    pub fn max_n(&self) -> usize {
        self.ternary.len()
    }
}

/// The client's query-independent upload: `Enc2(s_i)` for every entry
/// of the (shared) inner secret (the `z_i` of Appendix A).
#[derive(Debug, Clone)]
pub struct EncryptedSecret {
    z: Vec<SeededRlweCiphertext>,
}

impl EncryptedSecret {
    /// Encrypts the shared inner secret under the outer key.
    pub fn encrypt<R: Rng + ?Sized>(uh: &Underhood, key: &ClientKey, rng: &mut R) -> Self {
        let z = key
            .ternary
            .iter()
            .enumerate()
            .map(|(i, &s_i)| {
                let seed = derive_ct_seed(rng, i);
                encrypt_scalar(uh.outer(), &key.rlwe_sk, s_i, seed, rng)
            })
            .collect();
        Self { z }
    }

    /// Number of entries covered (`max_n`).
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Whether the upload is empty.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }

    /// Wire size in bytes: count prefix plus the seeded ciphertexts.
    pub fn byte_len(&self) -> u64 {
        4 + self.z.iter().map(|c| c.byte_len()).sum::<u64>()
    }

    /// Serializes to the wire format (`encode().len() == byte_len()`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.byte_len() as usize);
        w.put_u32(self.z.len() as u32);
        for ct in &self.z {
            ct.encode_into(&mut w);
        }
        w.finish()
    }

    /// Parses from the wire format.
    ///
    /// # Errors
    ///
    /// Fails on truncation, oversize counts, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let n = r.get_u32()? as usize;
        if n > (1 << 20) {
            return Err(WireError::Invalid("too many secret-key ciphertexts"));
        }
        let z = (0..n)
            .map(|_| SeededRlweCiphertext::decode_from(&mut r))
            .collect::<Result<Vec<_>, _>>()?;
        r.finish()?;
        Ok(Self { z })
    }
}

fn derive_ct_seed<R: Rng + ?Sized>(rng: &mut R, i: usize) -> u64 {
    tiptoe_math::rng::derive_seed(rng.gen(), i as u64)
}

/// A server-side expanded form of an [`EncryptedSecret`]: every `z_i`
/// in NTT domain, ready for token generation. Expansion costs ~3·n
/// NTTs; expanding once and reusing it across services and shards is
/// the difference between one and five expansions per token.
pub struct ExpandedSecret {
    z: Vec<RlweCiphertext>,
}

impl ExpandedSecret {
    /// Number of secret coordinates covered.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Whether the expansion is empty.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }
}

impl EncryptedSecret {
    /// Expands all ciphertexts into NTT form (server side).
    pub fn expand(&self, uh: &Underhood) -> ExpandedSecret {
        ExpandedSecret { z: self.z.iter().map(|z| expand(uh.outer(), z)).collect() }
    }
}

/// The server's NTT-ready form of a (bit-dropped, limb-decomposed)
/// hint: for each chunk of `N` hint rows, each limb, and each secret
/// coordinate `i`, the plaintext polynomial whose coefficient `r` is
/// `limb_j(H[chunk·N + r][i])`.
pub struct ServerHint {
    /// `[chunk][limb][secret coordinate] -> Shoup-precomputed
    /// NTT-domain plaintext`.
    polys: Vec<Vec<Vec<ShoupPoly>>>,
    /// Original number of hint rows (before padding to chunks of `N`).
    rows: usize,
    /// Secret dimension `n` of this hint.
    n: usize,
}

impl ServerHint {
    /// Number of hint rows covered (unpadded).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Secret dimension.
    pub fn secret_dim(&self) -> usize {
        self.n
    }

    /// Number of row chunks (`⌈rows / N⌉`).
    pub fn chunks(&self) -> usize {
        self.polys.len()
    }

    /// Replaces one chunk's polynomials after an incremental hint
    /// update (§3.2 corpus updates).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range or the layout differs.
    pub fn replace_chunk(&mut self, chunk: usize, polys: Vec<Vec<ShoupPoly>>) {
        assert!(chunk < self.polys.len(), "chunk out of range");
        assert_eq!(polys.len(), self.polys[chunk].len(), "limb count mismatch");
        assert!(polys.iter().all(|l| l.len() == self.n), "column count mismatch");
        self.polys[chunk] = polys;
    }
}

impl Underhood {
    /// Preprocesses a hint for token generation (corpus-dependent
    /// only; runs in the data-loading batch phase).
    pub fn preprocess_hint<W: Word>(&self, hint: &Mat<W>) -> ServerHint {
        let n_ring = self.ctx.params().degree;
        let rows = hint.rows();
        let n = hint.cols();
        let chunks = rows.div_ceil(n_ring).max(1);
        let polys = (0..chunks).map(|c| self.hint_chunk_polys(hint, c)).collect();
        ServerHint { polys, rows, n }
    }

    /// Builds the NTT-ready limb polynomials of one chunk of `N_ring`
    /// hint rows (the unit of incremental refresh after a corpus
    /// update: touching one matrix row only invalidates its chunk).
    pub fn hint_chunk_polys<W: Word>(&self, hint: &Mat<W>, chunk: usize) -> Vec<Vec<ShoupPoly>> {
        let n_ring = self.ctx.params().degree;
        let rows = hint.rows();
        let n = hint.cols();
        let mut coeffs = vec![0u64; n_ring];
        let mut per_limb = Vec::with_capacity(self.limbs as usize);
        for j in 0..self.limbs {
            let mut per_col = Vec::with_capacity(n);
            for i in 0..n {
                for (r, slot) in coeffs.iter_mut().enumerate() {
                    let row = chunk * n_ring + r;
                    *slot =
                        if row < rows { self.limb(hint.get(row, i).to_u64(), j) } else { 0 };
                }
                per_col.push(self.ctx.plaintext_shoup(&coeffs));
            }
            per_limb.push(per_col);
        }
        per_limb
    }

    /// Generates a query token: evaluates `Enc2(limb_j(H)·s)` for every
    /// chunk and limb, then modulus-switches for download compression.
    ///
    /// This is the server-side work of the paper's token-generation
    /// step (§6.3); it runs before the client has a query. Callers
    /// serving several hints for one client (two services, many
    /// shards) should [`EncryptedSecret::expand`] once and use
    /// [`Underhood::generate_token_expanded`].
    ///
    /// # Panics
    ///
    /// Panics if the encrypted secret covers fewer coordinates than the
    /// hint's secret dimension.
    pub fn generate_token(&self, sh: &ServerHint, es: &EncryptedSecret) -> QueryToken {
        self.generate_token_expanded(sh, &es.expand(self))
    }

    /// Token generation over a pre-expanded secret (the hot path).
    ///
    /// # Panics
    ///
    /// Panics if the expansion covers fewer coordinates than the
    /// hint's secret dimension.
    pub fn generate_token_expanded(&self, sh: &ServerHint, es: &ExpandedSecret) -> QueryToken {
        self.generate_token_expanded_par(sh, es, 1)
    }

    /// Parallel token generation (`num_threads == 0` = one thread per
    /// core): the `(chunk, limb)` evaluations — each an independent
    /// NTT-domain multiply-accumulate over the secret coordinates plus
    /// one modulus switch — fan out across threads. Every unit's
    /// arithmetic is untouched, so the token is bit-identical to the
    /// sequential path.
    ///
    /// # Panics
    ///
    /// Panics if the expansion covers fewer coordinates than the
    /// hint's secret dimension.
    pub fn generate_token_expanded_par(
        &self,
        sh: &ServerHint,
        es: &ExpandedSecret,
        num_threads: usize,
    ) -> QueryToken {
        assert!(es.len() >= sh.n, "encrypted secret too short for this hint");
        let n_ring = self.ctx.params().degree;
        let limbs = self.limbs as usize;
        let units = sh.chunks() * limbs;
        let mut flat: Vec<Option<SwitchedCiphertext>> = (0..units).map(|_| None).collect();
        tiptoe_math::par::par_spans_mut(&mut flat, 1, num_threads, |start, span| {
            let table = self.ctx.table();
            let mut acc_a = vec![0u64; n_ring];
            let mut acc_b = vec![0u64; n_ring];
            for (off, slot) in span.iter_mut().enumerate() {
                let unit = start + off;
                let limb_polys = &sh.polys[unit / limbs][unit % limbs];
                acc_a.iter_mut().for_each(|x| *x = 0);
                acc_b.iter_mut().for_each(|x| *x = 0);
                for (h_poly, z) in limb_polys.iter().zip(es.z.iter()) {
                    table.mul_acc_shoup(h_poly, z.a.data(), &mut acc_a);
                    table.mul_acc_shoup(h_poly, z.b.data(), &mut acc_b);
                }
                let acc = RlweCiphertext {
                    a: Poly::from_ntt_data(std::sync::Arc::clone(table), acc_a.clone()),
                    b: Poly::from_ntt_data(std::sync::Arc::clone(table), acc_b.clone()),
                };
                *slot = Some(mod_switch(&self.ctx, &acc, self.switch_log_q2));
            }
        });
        let mut units_iter = flat.into_iter();
        let chunks = (0..sh.chunks())
            .map(|_| {
                (0..limbs)
                    .map(|_| units_iter.next().flatten().expect("every unit computed"))
                    .collect()
            })
            .collect();
        QueryToken { chunks, rows: sh.rows }
    }

    /// Batched token generation: evaluates one hint against `B`
    /// clients' expanded secrets in a single pass over the hint
    /// polynomials.
    ///
    /// Token generation is memory-bound on the hint: each `(chunk,
    /// limb, coordinate)` Shoup polynomial is far larger than the
    /// per-client accumulators. The per-client path re-reads every
    /// polynomial from DRAM once per client; here the inner loop loads
    /// each polynomial once and multiply-accumulates it into all `B`
    /// clients' accumulators while it is hot — the token-path
    /// counterpart of the batched matvec kernels, and what the serving
    /// plane's token lane flushes through.
    ///
    /// Each client's accumulation order over the secret coordinates is
    /// unchanged, so every returned token is bit-identical to
    /// [`Underhood::generate_token_expanded`] for that client alone.
    ///
    /// # Panics
    ///
    /// Panics if any expansion covers fewer coordinates than the
    /// hint's secret dimension.
    pub fn generate_token_expanded_many(
        &self,
        sh: &ServerHint,
        secrets: &[&ExpandedSecret],
        num_threads: usize,
    ) -> Vec<QueryToken> {
        let b = secrets.len();
        if b == 0 {
            return Vec::new();
        }
        for es in secrets {
            assert!(es.len() >= sh.n, "encrypted secret too short for this hint");
        }
        let n_ring = self.ctx.params().degree;
        let limbs = self.limbs as usize;
        let units = sh.chunks() * limbs;
        // `(chunk, limb)` units fan out across threads exactly as in
        // the per-client parallel path; the batch dimension stays
        // inside each unit, where the polynomial reuse lives.
        let mut flat: Vec<Option<Vec<SwitchedCiphertext>>> = (0..units).map(|_| None).collect();
        tiptoe_math::par::par_spans_mut(&mut flat, 1, num_threads, |start, span| {
            let table = self.ctx.table();
            let mut acc_a = vec![vec![0u64; n_ring]; b];
            let mut acc_b = vec![vec![0u64; n_ring]; b];
            for (off, slot) in span.iter_mut().enumerate() {
                let unit = start + off;
                let limb_polys = &sh.polys[unit / limbs][unit % limbs];
                for acc in acc_a.iter_mut().chain(acc_b.iter_mut()) {
                    acc.iter_mut().for_each(|x| *x = 0);
                }
                for (i, h_poly) in limb_polys.iter().enumerate() {
                    // One DRAM read of `h_poly` serves the whole batch.
                    for (bi, es) in secrets.iter().enumerate() {
                        let z = &es.z[i];
                        table.mul_acc_shoup(h_poly, z.a.data(), &mut acc_a[bi]);
                        table.mul_acc_shoup(h_poly, z.b.data(), &mut acc_b[bi]);
                    }
                }
                *slot = Some(
                    (0..b)
                        .map(|bi| {
                            let acc = RlweCiphertext {
                                a: Poly::from_ntt_data(
                                    std::sync::Arc::clone(table),
                                    acc_a[bi].clone(),
                                ),
                                b: Poly::from_ntt_data(
                                    std::sync::Arc::clone(table),
                                    acc_b[bi].clone(),
                                ),
                            };
                            mod_switch(&self.ctx, &acc, self.switch_log_q2)
                        })
                        .collect(),
                );
            }
        });
        // Transpose [unit][client] into per-client chunk×limb layouts.
        let mut per_client: Vec<Vec<SwitchedCiphertext>> =
            (0..b).map(|_| Vec::with_capacity(units)).collect();
        for unit_cts in flat {
            let unit_cts = unit_cts.expect("every unit computed");
            for (bi, ct) in unit_cts.into_iter().enumerate() {
                per_client[bi].push(ct);
            }
        }
        per_client
            .into_iter()
            .map(|units_flat| {
                let mut it = units_flat.into_iter();
                let chunks = (0..sh.chunks())
                    .map(|_| (0..limbs).map(|_| it.next().expect("unit count")).collect())
                    .collect();
                QueryToken { chunks, rows: sh.rows }
            })
            .collect()
    }

    /// Decodes a token into the `H·s` words needed for inner
    /// decryption (client side, before the query).
    pub fn decode_token<W: Word>(&self, key: &ClientKey, token: &QueryToken) -> DecodedToken<W> {
        let n_ring = self.ctx.params().degree;
        let kept = self.lwe.log_q - self.kappa;
        let kept_mask: u128 = if kept >= 128 { u128::MAX } else { (1u128 << kept) - 1 };
        // Allocation bounded by the material actually present, not the
        // (possibly hostile) declared row count.
        let mut hs = Vec::with_capacity(token.rows.min(token.chunks.len() * n_ring));
        for chunk in &token.chunks {
            let limb_values: Vec<Vec<i64>> = chunk
                .iter()
                .map(|sw| decrypt_switched(&self.ctx, &key.rlwe_sk, sw))
                .collect();
            for r in 0..n_ring {
                if hs.len() == token.rows {
                    break;
                }
                // T = Σ_j 2^(16j) · P_j[r]  (mod 2^kept), exactly.
                let mut t: i128 = 0;
                for (j, limb) in limb_values.iter().enumerate() {
                    t += (limb[r] as i128) << (16 * j);
                }
                let t_mod = (t.rem_euclid(1i128 << kept) as u128) & kept_mask;
                // H·s ≈ 2^κ · T.
                hs.push(W::from_u64((t_mod as u64).wrapping_shl(self.kappa)));
            }
        }
        DecodedToken { hs: Some(hs) }
    }

    /// Encrypts a query vector under the inner scheme (the only upload
    /// on the latency-critical path).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches (see [`scheme::encrypt`]).
    pub fn encrypt_query<W: Word, R: Rng + ?Sized>(
        &self,
        key: &ClientKey,
        a: &MatrixA,
        v: &[u64],
        rng: &mut R,
    ) -> LweCiphertext<W> {
        let sk = key.lwe_key::<W>(&self.lwe);
        scheme::encrypt(&self.lwe, &sk, a, v, rng)
    }

    /// Final decryption: combines the (single-use) decoded token with
    /// the online response `c' = M·ct`.
    ///
    /// # Panics
    ///
    /// Panics if the token was already used or if `applied.len()`
    /// differs from the token's row count.
    pub fn decrypt<W: Word>(&self, token: &mut DecodedToken<W>, applied: &[W]) -> Vec<u64> {
        let hs = token.take_hs();
        scheme::decrypt_from_parts(&self.lwe, &hs, applied)
    }

    /// Upper bound on the total decryption error: inner LWE noise after
    /// `m` MAC steps plus the dropped hint mass `n·2^κ`. Must stay
    /// below `Δ/2` for correct rounding.
    pub fn total_noise_bound(&self, m: usize) -> f64 {
        self.lwe.noise_bound(m) + (self.lwe.n as f64) * (2f64).powi(self.kappa as i32)
    }

    /// Whether the composed scheme decrypts reliably at upload
    /// dimension `m`.
    pub fn supports_upload_dim(&self, m: usize) -> bool {
        self.total_noise_bound(m) < self.lwe.delta() as f64 / 2.0
    }
}

/// A query token: the modulus-switched `Enc2(H·s)` ciphertexts,
/// `[chunk][limb]`.
#[derive(Debug, Clone)]
pub struct QueryToken {
    chunks: Vec<Vec<SwitchedCiphertext>>,
    rows: usize,
}

impl QueryToken {
    /// Wire size in bytes: header (rows, chunk count, limb count) plus
    /// the modulus-switched ciphertexts.
    pub fn byte_len(&self) -> u64 {
        12 + self.chunks.iter().flatten().map(|c| c.byte_len()).sum::<u64>()
    }

    /// Serializes to the wire format (`encode().len() == byte_len()`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(self.byte_len() as usize);
        w.put_u32(self.rows as u32);
        w.put_u32(self.chunks.len() as u32);
        w.put_u32(self.chunks.first().map_or(0, Vec::len) as u32);
        for chunk in &self.chunks {
            for limb in chunk {
                limb.encode_into(&mut w);
            }
        }
        w.finish()
    }

    /// Parses from the wire format.
    ///
    /// # Errors
    ///
    /// Fails on truncation, an inconsistent layout, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let rows = r.get_u32()? as usize;
        let chunk_count = r.get_u32()? as usize;
        let limb_count = r.get_u32()? as usize;
        if chunk_count > (1 << 16) || limb_count > 8 {
            return Err(WireError::Invalid("token layout out of range"));
        }
        // Each chunk covers at most one ring degree of hint rows, so a
        // declared row count beyond chunks · 2^16 cannot be honest;
        // rejecting it here bounds the decode-side allocation.
        if rows > chunk_count.saturating_mul(1 << 16) {
            return Err(WireError::Invalid("token row count exceeds chunk capacity"));
        }
        let mut chunks = Vec::with_capacity(chunk_count);
        for _ in 0..chunk_count {
            let mut per_limb = Vec::with_capacity(limb_count);
            for _ in 0..limb_count {
                per_limb.push(SwitchedCiphertext::decode_from(&mut r)?);
            }
            chunks.push(per_limb);
        }
        r.finish()?;
        Ok(Self { chunks, rows })
    }

    /// Number of hint rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// A decoded, **single-use** token holding the `H·s` words.
#[derive(Debug, Clone)]
pub struct DecodedToken<W: Word> {
    hs: Option<Vec<W>>,
}

impl<W: Word> DecodedToken<W> {
    /// Consumes the token's key material.
    ///
    /// # Panics
    ///
    /// Panics if the token was already used (reuse would break the
    /// semantic security of the inner scheme, paper §6.3).
    pub fn take_hs(&mut self) -> Vec<W> {
        self.hs.take().expect("query token already used; tokens are single-use")
    }

    /// Whether this token is still usable.
    pub fn is_fresh(&self) -> bool {
        self.hs.is_some()
    }

    /// Number of `H·s` words (only valid while fresh).
    pub fn rows(&self) -> usize {
        self.hs.as_ref().map_or(0, |v| v.len())
    }
}

/// Combines partial tokens from vertically sharded workers by summing
/// the underlying ciphertexts (the coordinator-side aggregation of
/// §4.3 applied to token generation).
///
/// All shards must share chunk/limb layout and modulus.
///
/// # Panics
///
/// Panics if `parts` is empty or the layouts differ.
pub fn combine_partial_tokens(uh: &Underhood, parts: &[QueryToken]) -> QueryToken {
    assert!(!parts.is_empty(), "no partial tokens to combine");
    let rows = parts[0].rows;
    let n_ring = uh.outer().params().degree;
    let chunk_count = parts[0].chunks.len();
    let limb_count = parts[0].chunks.first().map_or(0, |c| c.len());
    let mut out = Vec::with_capacity(chunk_count);
    for c in 0..chunk_count {
        let mut per_limb = Vec::with_capacity(limb_count);
        for l in 0..limb_count {
            let log_q2 = parts[0].chunks[c][l].log_q2;
            let mask = if log_q2 == 64 { u64::MAX } else { (1u64 << log_q2) - 1 };
            let mut a = vec![0u64; n_ring];
            let mut b = vec![0u64; n_ring];
            for part in parts {
                assert_eq!(part.rows, rows, "shard layout mismatch");
                let sw = &part.chunks[c][l];
                assert_eq!(sw.log_q2, log_q2, "shard modulus mismatch");
                for (acc, &x) in a.iter_mut().zip(sw.a.iter()) {
                    *acc = acc.wrapping_add(x) & mask;
                }
                for (acc, &x) in b.iter_mut().zip(sw.b.iter()) {
                    *acc = acc.wrapping_add(x) & mask;
                }
            }
            per_limb.push(SwitchedCiphertext { a, b, log_q2 });
        }
        out.push(per_limb);
    }
    QueryToken { chunks: out, rows }
}

/// Combines *decoded* per-shard tokens over a survivor subset: the
/// degraded-mode counterpart of [`combine_partial_tokens`].
///
/// With a vertically sharded hint `H = Σ_w H_w`, each shard's token
/// decodes to `H_w·s` (plus its bounded drop error), and any subset
/// sums to the `H·s` restricted to the shards that answered — so a
/// client holding per-shard tokens can decrypt exactly over whichever
/// shards survive a fault-degraded query. Consumes the included parts
/// (they share the single-use inner secret).
///
/// # Panics
///
/// Panics if the mask length differs from `parts`, no shard is
/// included, an included part was already used, or row counts differ.
pub fn combine_decoded_subset<W: Word>(
    parts: &mut [DecodedToken<W>],
    include: &[bool],
) -> DecodedToken<W> {
    assert_eq!(parts.len(), include.len(), "survivor mask length mismatch");
    let mut acc: Option<Vec<W>> = None;
    for (part, &inc) in parts.iter_mut().zip(include) {
        if !inc {
            continue;
        }
        let hs = part.take_hs();
        match &mut acc {
            None => acc = Some(hs),
            Some(a) => {
                assert_eq!(a.len(), hs.len(), "shard token row-count mismatch");
                for (x, y) in a.iter_mut().zip(hs) {
                    *x = x.wadd(y);
                }
            }
        }
    }
    DecodedToken { hs: Some(acc.expect("no surviving shard token to combine")) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tiptoe_lwe::scheme::{apply, preproc};
    use tiptoe_math::rng::seeded_rng;

    fn test_underhood_64() -> Underhood {
        // Inner: q = 2^64, p = 2^17 (ranking-like), n = 64.
        // Outer: small ring with t = 2^24 ≥ 2·64·2^16.
        let lwe = LweParams::insecure_test(64, 1 << 17, 81920.0);
        let rlwe = RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 };
        Underhood::with_outer(lwe, rlwe, 44)
    }

    fn test_underhood_32() -> Underhood {
        // Inner: q = 2^32, p = 991 (URL-like), n = 64.
        let lwe = LweParams::insecure_test(32, 991, 6.4);
        let rlwe = RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 };
        Underhood::with_outer(lwe, rlwe, 44)
    }

    fn random_db(rng: &mut impl Rng, rows: usize, cols: usize, p: u64) -> Mat<u32> {
        Mat::from_fn(rows, cols, |_, _| rng.gen_range(0..p) as u32)
    }

    fn matvec_mod_p(db: &Mat<u32>, v: &[u64], p: u64) -> Vec<u64> {
        (0..db.rows())
            .map(|i| {
                let mut acc: u128 = 0;
                for (j, &m) in db.row(i).iter().enumerate() {
                    acc = (acc + m as u128 * v[j] as u128) % p as u128;
                }
                acc as u64
            })
            .collect()
    }

    /// Full protocol roundtrip against the plain-hint reference.
    fn roundtrip<W: Word>(uh: &Underhood, rows: usize, cols: usize, seed: u64, selection: bool) {
        let mut rng = seeded_rng(seed);
        let p = uh.lwe().p;
        let db = random_db(&mut rng, rows, cols, p.min(16));
        let a = MatrixA::new(77, cols, uh.lwe().n);
        let key = ClientKey::generate(uh, uh.lwe().n, &mut rng);

        // Offline: encrypted secret -> token.
        let es = EncryptedSecret::encrypt(uh, &key, &mut rng);
        let hint = preproc::<W>(&db, &a.row_range(0, cols));
        let sh = uh.preprocess_hint(&hint);
        let token = uh.generate_token(&sh, &es);
        let mut decoded = uh.decode_token::<W>(&key, &token);

        // Online: encrypted query -> apply -> decrypt with token.
        let v: Vec<u64> = if selection {
            let mut v = vec![0u64; cols];
            v[cols / 3] = 1;
            v
        } else {
            (0..cols).map(|_| rng.gen_range(0..p)).collect()
        };
        let ct = uh.encrypt_query::<W, _>(&key, &a, &v, &mut rng);
        let applied = apply(&db, &ct);
        let got = uh.decrypt(&mut decoded, &applied);
        assert_eq!(got, matvec_mod_p(&db, &v, p));
    }

    #[test]
    fn roundtrip_ranking_like_q64() {
        roundtrip::<u64>(&test_underhood_64(), 10, 48, 1, false);
    }

    #[test]
    fn roundtrip_url_like_q32() {
        roundtrip::<u32>(&test_underhood_32(), 10, 48, 2, true);
    }

    #[test]
    fn roundtrip_multiple_chunks() {
        // More hint rows than the ring degree forces multi-chunk tokens.
        roundtrip::<u64>(&test_underhood_64(), 150, 32, 3, false);
    }

    #[test]
    fn parallel_token_generation_is_bit_identical() {
        let uh = test_underhood_64();
        let mut rng = seeded_rng(9);
        // 150 rows over a degree-64 ring -> 3 chunks x 3 limbs of work.
        let db = random_db(&mut rng, 150, 32, 8);
        let a = MatrixA::new(21, 32, uh.lwe().n);
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, 32));
        let sh = uh.preprocess_hint(&hint);
        let expanded = es.expand(&uh);
        let sequential = uh.generate_token_expanded(&sh, &expanded).encode();
        for threads in [0, 2, 3, 7] {
            let par = uh.generate_token_expanded_par(&sh, &expanded, threads).encode();
            assert_eq!(par, sequential, "threads={threads}");
        }
    }

    #[test]
    fn batched_token_generation_is_bit_identical_per_client() {
        // Three clients with independent keys against one multi-chunk
        // hint: every batched token must equal that client's solo
        // token byte-for-byte, at several thread counts (the batch
        // dimension lives inside each parallel unit).
        let uh = test_underhood_64();
        let mut rng = seeded_rng(31);
        let db = random_db(&mut rng, 150, 32, 8);
        let a = MatrixA::new(23, 32, uh.lwe().n);
        let hint = preproc::<u64>(&db, &a.row_range(0, 32));
        let sh = uh.preprocess_hint(&hint);
        let expansions: Vec<ExpandedSecret> = (0..3)
            .map(|_| {
                let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
                EncryptedSecret::encrypt(&uh, &key, &mut rng).expand(&uh)
            })
            .collect();
        let solo: Vec<Vec<u8>> =
            expansions.iter().map(|es| uh.generate_token_expanded(&sh, es).encode()).collect();
        let refs: Vec<&ExpandedSecret> = expansions.iter().collect();
        for threads in [1, 2, 3] {
            let batched = uh.generate_token_expanded_many(&sh, &refs, threads);
            assert_eq!(batched.len(), 3);
            for (bi, token) in batched.iter().enumerate() {
                assert_eq!(token.encode(), solo[bi], "client {bi}, threads={threads}");
            }
        }
        assert!(uh.generate_token_expanded_many(&sh, &[], 1).is_empty());
    }

    #[test]
    fn token_reuse_is_rejected() {
        let uh = test_underhood_64();
        let mut rng = seeded_rng(4);
        let db = random_db(&mut rng, 4, 16, 8);
        let a = MatrixA::new(5, 16, uh.lwe().n);
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, 16));
        let sh = uh.preprocess_hint(&hint);
        let token = uh.generate_token(&sh, &es);
        let mut decoded = uh.decode_token::<u64>(&key, &token);
        assert!(decoded.is_fresh());
        let _ = decoded.take_hs();
        assert!(!decoded.is_fresh());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = decoded.take_hs();
        }));
        assert!(result.is_err(), "second use must panic");
    }

    #[test]
    fn decoded_hs_matches_true_hint_product_up_to_budget() {
        let uh = test_underhood_64();
        let mut rng = seeded_rng(5);
        let cols = 32;
        let db = random_db(&mut rng, 8, cols, 16);
        let a = MatrixA::new(6, cols, uh.lwe().n);
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, cols));
        let sh = uh.preprocess_hint(&hint);
        let token = uh.generate_token(&sh, &es);
        let mut decoded = uh.decode_token::<u64>(&key, &token);
        let approx = decoded.take_hs();
        let exact = scheme::hint_times_secret(&hint, &key.lwe_key::<u64>(uh.lwe()));
        let budget = (uh.lwe().n as u64) << uh.dropped_bits();
        for (got, want) in approx.iter().zip(exact.iter()) {
            let err = want.wrapping_sub(*got);
            let err = (err as i64).unsigned_abs();
            assert!(err <= budget, "hint error {err} exceeds budget {budget}");
        }
    }

    #[test]
    fn sharded_tokens_combine_to_unsharded_result() {
        // Vertical sharding: hint = hint_left + hint_right, and the
        // coordinator sums the partial tokens (all under one client key).
        let uh = test_underhood_64();
        let mut rng = seeded_rng(6);
        let cols = 48;
        let split = 32;
        let p = uh.lwe().p;
        let db = random_db(&mut rng, 8, cols, 16);
        let a = MatrixA::new(7, cols, uh.lwe().n);
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);

        let left = preproc::<u64>(&db.column_slice(0, split), &a.row_range(0, split));
        let right = preproc::<u64>(&db.column_slice(split, cols), &a.row_range(split, cols - split));
        let t_left = uh.generate_token(&uh.preprocess_hint(&left), &es);
        let t_right = uh.generate_token(&uh.preprocess_hint(&right), &es);
        let combined = combine_partial_tokens(&uh, &[t_left, t_right]);
        let mut decoded = uh.decode_token::<u64>(&key, &combined);

        let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..p)).collect();
        let ct = uh.encrypt_query::<u64, _>(&key, &a, &v, &mut rng);
        let applied = apply(&db, &ct);
        let got = uh.decrypt(&mut decoded, &applied);
        assert_eq!(got, matvec_mod_p(&db, &v, p));
    }

    #[test]
    fn decoded_subset_combination_decrypts_over_survivors() {
        // Degraded mode: per-shard tokens, decrypted over a survivor
        // subset, must yield the exact scores of the surviving columns
        // (the failed shard's columns contribute zero).
        let uh = test_underhood_64();
        let mut rng = seeded_rng(16);
        let cols = 48;
        let split = 32;
        let p = uh.lwe().p;
        let db = random_db(&mut rng, 8, cols, 16);
        let a = MatrixA::new(7, cols, uh.lwe().n);
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);

        let left_db = db.column_slice(0, split);
        let left = preproc::<u64>(&left_db, &a.row_range(0, split));
        let right = preproc::<u64>(&db.column_slice(split, cols), &a.row_range(split, cols - split));
        let t_left = uh.generate_token(&uh.preprocess_hint(&left), &es);
        let t_right = uh.generate_token(&uh.preprocess_hint(&right), &es);
        let mut parts =
            vec![uh.decode_token::<u64>(&key, &t_left), uh.decode_token::<u64>(&key, &t_right)];

        // Only the left shard survives; the query vector is zero on the
        // failed shard's columns (the client knows which shards died).
        let mut v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..p)).collect();
        for x in v.iter_mut().skip(split) {
            *x = 0;
        }
        let ct = uh.encrypt_query::<u64, _>(&key, &a, &v, &mut rng);
        // The coordinator sums only the surviving shard's answer.
        let chunk = LweCiphertext { c: ct.c[..split].to_vec() };
        let applied = apply(&left_db, &chunk);
        let mut subset = combine_decoded_subset(&mut parts, &[true, false]);
        let got = uh.decrypt(&mut subset, &applied);
        assert_eq!(got, matvec_mod_p(&left_db, &v[..split], p));
        // Included parts are consumed; excluded ones stay fresh.
        assert!(!parts[0].is_fresh());
        assert!(parts[1].is_fresh());

        // Both shards surviving must match the combined-token path.
        let mut all =
            vec![uh.decode_token::<u64>(&key, &t_left), uh.decode_token::<u64>(&key, &t_right)];
        let mut both = combine_decoded_subset(&mut all, &[true, true]);
        let combined = combine_partial_tokens(&uh, &[t_left, t_right]);
        let mut dec = uh.decode_token::<u64>(&key, &combined);
        let v2: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..p)).collect();
        let ct2 = uh.encrypt_query::<u64, _>(&key, &a, &v2, &mut rng);
        let applied2 = apply(&db, &ct2);
        assert_eq!(uh.decrypt(&mut both, &applied2), uh.decrypt(&mut dec, &applied2));
    }

    #[test]
    fn hostile_token_row_counts_are_rejected() {
        // A declared row count far beyond the shipped chunks must fail
        // decode instead of reserving gigabytes in decode_token.
        let uh = test_underhood_64();
        let mut rng = seeded_rng(17);
        let db = random_db(&mut rng, 8, 16, 8);
        let a = MatrixA::new(5, 16, uh.lwe().n);
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, 16));
        let token = uh.generate_token(&uh.preprocess_hint(&hint), &es);
        let mut bytes = token.encode();
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(QueryToken::decode(&bytes), Err(WireError::Invalid(_))));
        // The original still roundtrips.
        let back = QueryToken::decode(&token.encode()).expect("valid token decodes");
        assert_eq!(back.rows(), token.rows());
    }

    #[test]
    fn layout_matches_parameters() {
        let uh64 = test_underhood_64();
        // q = 2^64, p = 2^17 -> Δ = 2^47; n = 64 -> κ = 47-4-6 = 37;
        // kept 27 bits -> 2 limbs.
        assert_eq!(uh64.dropped_bits(), 37);
        assert_eq!(uh64.limb_count(), 2);
        assert!(uh64.supports_upload_dim(1 << 10));

        let uh32 = test_underhood_32();
        // q = 2^32, p = 991 -> Δ ≈ 2^21.7; κ ≈ 21.7-3-6 ≈ 12.
        assert!(uh32.dropped_bits() >= 10 && uh32.dropped_bits() <= 13);
        assert_eq!(uh32.limb_count(), 2);
    }

    #[test]
    fn production_parameters_have_positive_budget() {
        let uh = Underhood::new(LweParams::ranking_text());
        // Ranking: Δ = 2^47, n = 2048 -> κ = 47-4-11 = 32, kept 32 bits
        // -> 2 limbs; still supports the paper's 2^21 upload dimension.
        assert_eq!(uh.dropped_bits(), 32);
        assert_eq!(uh.limb_count(), 2);
        assert!(uh.supports_upload_dim(1 << 21));
    }

    #[test]
    fn production_noise_margin_is_healthy() {
        // Production parameters, many trials, realistic upload width:
        // the measured decryption noise must stay well under Δ/2, and
        // no trial may decrypt incorrectly.
        let uh = Underhood::new(LweParams::ranking_text());
        let mut rng = seeded_rng(42);
        let p = uh.lwe().p;
        let cols = 384; // 2 clusters x d=192 at production dimensions.
        let db = random_db(&mut rng, 4, cols, 16);
        let a = MatrixA::new(77, cols, uh.lwe().n);
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, cols));
        let sh = uh.preprocess_hint(&hint);
        for trial in 0..3 {
            let token = uh.generate_token(&sh, &es);
            let mut decoded = uh.decode_token::<u64>(&key, &token);
            let v: Vec<u64> = (0..cols).map(|_| rng.gen_range(0..p)).collect();
            let ct = uh.encrypt_query::<u64, _>(&key, &a, &v, &mut rng);
            let applied = apply(&db, &ct);
            let got = uh.decrypt(&mut decoded, &applied);
            assert_eq!(got, matvec_mod_p(&db, &v, p), "trial {trial} decrypted wrong");
        }
        // The analytic budget agrees: margins at this width are ample.
        assert!(uh.total_noise_bound(cols) < uh.lwe().delta() as f64 / 8.0);
    }

    #[test]
    fn token_is_smaller_than_unswitched_hint_download() {
        let uh = test_underhood_64();
        let mut rng = seeded_rng(8);
        let cols = 16;
        let db = random_db(&mut rng, 70, cols, 8);
        let a = MatrixA::new(9, cols, uh.lwe().n);
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
        let hint = preproc::<u64>(&db, &a.row_range(0, cols));
        let token = uh.generate_token(&uh.preprocess_hint(&hint), &es);
        // The raw hint would be rows×n 8-byte words.
        let raw_hint_bytes = (hint.rows() * hint.cols() * 8) as u64;
        assert!(token.byte_len() < raw_hint_bytes, "token should beat shipping the hint");
    }
}
