//! Packed signed-4-bit matrix storage for the ranking database.
//!
//! The paper stores embeddings as "signed 4-bit integers" (§8.6,
//! App. B.1); holding them as full `u32` residues wastes 8× the memory
//! and — since the §4 scan is DRAM-bandwidth-bound — up to that much
//! scan bandwidth. [`NibbleMat`] packs two signed nibbles per byte and
//! provides the same wrapping matrix-vector kernel as
//! [`crate::matrix::matvec`].
//!
//! Correctness note: the nibble's *signed* value is embedded into
//! `Z_{2^k}` on the fly (`-3 → 2^k - 3`). Decryption reduces modulo
//! the plaintext modulus `p`, and for the ranking configurations `p`
//! is a power of two dividing `2^k`, so the signed embedding is
//! congruent mod `p` to the usual residue embedding — the two storage
//! formats decrypt identically (asserted by tests). The URL service's
//! non-power-of-two `p` keeps the plain `u32` format.

use crate::matrix::Mat;
use crate::zq::Word;

/// A row-major matrix of signed 4-bit entries, two per byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NibbleMat {
    rows: usize,
    cols: usize,
    /// Packed entries; row stride is `(cols + 1) / 2` bytes.
    data: Vec<u8>,
}

#[inline(always)]
fn encode_nibble(v: i8) -> u8 {
    debug_assert!((-8..=7).contains(&v), "nibble out of range");
    (v as u8) & 0x0f
}

#[inline(always)]
fn decode_nibble(n: u8) -> i8 {
    // Sign-extend the low 4 bits.
    ((n ^ 0x8).wrapping_sub(0x8)) as i8
}

impl NibbleMat {
    /// Packs signed values (each in `[-8, 7]`).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols` or any value is out of
    /// range.
    pub fn from_signed(rows: usize, cols: usize, values: &[i8]) -> Self {
        assert_eq!(values.len(), rows * cols, "buffer does not match shape");
        assert!(values.iter().all(|&v| (-8..=7).contains(&v)), "entry out of nibble range");
        let stride = cols.div_ceil(2);
        let mut data = vec![0u8; rows * stride];
        for r in 0..rows {
            for c in 0..cols {
                let v = encode_nibble(values[r * cols + c]);
                let byte = &mut data[r * stride + c / 2];
                if c % 2 == 0 {
                    *byte |= v;
                } else {
                    *byte |= v << 4;
                }
            }
        }
        Self { rows, cols, data }
    }

    /// Packs a matrix of `Z_p` residues (the ranking-matrix layout)
    /// whose centered values are signed 4-bit integers.
    ///
    /// # Panics
    ///
    /// Panics if any centered entry falls outside `[-8, 7]`.
    pub fn from_residues_mod_p(mat: &Mat<u32>, p: u64) -> Self {
        let values: Vec<i8> = mat
            .data()
            .iter()
            .map(|&x| {
                let signed = crate::zq::center(x as u64, p);
                assert!((-8..=7).contains(&signed), "entry not a signed nibble: {signed}");
                signed as i8
            })
            .collect();
        Self::from_signed(mat.rows(), mat.cols(), &values)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage bytes (the 8× win over `u32` entries).
    pub fn storage_bytes(&self) -> usize {
        self.data.len()
    }

    /// The signed entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    pub fn get(&self, row: usize, col: usize) -> i8 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let stride = self.cols.div_ceil(2);
        let byte = self.data[row * stride + col / 2];
        decode_nibble(if col.is_multiple_of(2) { byte & 0x0f } else { byte >> 4 })
    }

    /// `out = M · v` over `Z_{2^k}` with signed entries embedded via
    /// wrap-around — the packed counterpart of
    /// [`crate::matrix::matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec<W: Word>(&self, v: &[W]) -> Vec<W> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![W::ZERO; self.rows];
        self.matvec_rows_into(0, v, &mut out);
        out
    }

    /// Packed matvec of rows `[row_start, row_start + out.len())` into
    /// `out` — the span-level worker behind [`Self::matvec`] and
    /// [`Self::matvec_par`].
    ///
    /// # Panics
    ///
    /// Panics if the row range exceeds `rows` or `v.len() != cols`.
    pub fn matvec_rows_into<W: Word>(&self, row_start: usize, v: &[W], out: &mut [W]) {
        assert!(row_start + out.len() <= self.rows, "row range out of bounds");
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let stride = self.cols.div_ceil(2);
        for (off, o) in out.iter_mut().enumerate() {
            let r = row_start + off;
            let row = &self.data[r * stride..(r + 1) * stride];
            let mut acc0 = W::ZERO;
            let mut acc1 = W::ZERO;
            let pairs = self.cols / 2;
            for (k, &byte) in row.iter().enumerate().take(pairs) {
                let lo = decode_nibble(byte & 0x0f) as i64;
                let hi = decode_nibble(byte >> 4) as i64;
                acc0 = acc0.wadd(W::from_i64(lo).wmul(v[2 * k]));
                acc1 = acc1.wadd(W::from_i64(hi).wmul(v[2 * k + 1]));
            }
            if self.cols % 2 == 1 {
                let byte = row[pairs];
                let lo = decode_nibble(byte & 0x0f) as i64;
                acc0 = acc0.wadd(W::from_i64(lo).wmul(v[self.cols - 1]));
            }
            *o = acc0.wadd(acc1);
        }
    }

    /// Row-parallel packed matvec (`num_threads == 0` = one per core);
    /// bit-identical to [`Self::matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec_par<W: Word>(&self, v: &[W], num_threads: usize) -> Vec<W> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![W::ZERO; self.rows];
        crate::par::par_spans_mut(&mut out, 1, num_threads, |start, span| {
            self.matvec_rows_into(start, v, span);
        });
        out
    }

    /// Batched packed matvec: one scan of the nibble store answers all
    /// of `vs` (the packed counterpart of
    /// [`crate::matrix::matvec_batch`]); each output is bit-identical
    /// to `self.matvec(&vs[b])`.
    ///
    /// # Panics
    ///
    /// Panics if any vector's length differs from `cols`.
    pub fn matvec_batch<W: Word>(&self, vs: &[Vec<W>], num_threads: usize) -> Vec<Vec<W>> {
        for v in vs {
            assert_eq!(v.len(), self.cols, "dimension mismatch");
        }
        if vs.is_empty() {
            return Vec::new();
        }
        let batch = vs.len();
        let mut flat = vec![W::ZERO; self.rows * batch];
        crate::par::par_spans_mut(&mut flat, batch, num_threads, |start, span| {
            let row0 = start / batch;
            for (local, row_out) in span.chunks_exact_mut(batch).enumerate() {
                for (o, v) in row_out.iter_mut().zip(vs.iter()) {
                    let mut one = [W::ZERO];
                    self.matvec_rows_into(row0 + local, v, &mut one);
                    *o = one[0];
                }
            }
        });
        let mut outs = vec![Vec::with_capacity(self.rows); batch];
        for row_out in flat.chunks_exact(batch) {
            for (out, &x) in outs.iter_mut().zip(row_out.iter()) {
                out.push(x);
            }
        }
        outs
    }

    /// Expands back to a residue matrix (signed embedding mod `2^32`).
    pub fn to_residues(&self) -> Mat<u32> {
        Mat::from_fn(self.rows, self.cols, |r, c| self.get(r, c) as i32 as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::matvec;
    use crate::rng::seeded_rng;
    use rand::Rng;

    #[test]
    fn nibble_roundtrip_all_values() {
        for v in -8i8..=7 {
            assert_eq!(decode_nibble(encode_nibble(v)), v, "v={v}");
        }
    }

    #[test]
    fn get_matches_input() {
        let values: Vec<i8> = (0..15).map(|i| (i % 16) as i8 - 8).collect();
        let m = NibbleMat::from_signed(3, 5, &values);
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(m.get(r, c), values[r * 5 + c]);
            }
        }
    }

    #[test]
    fn packed_matvec_matches_unpacked_u64() {
        let mut rng = seeded_rng(1);
        for cols in [4usize, 7, 32, 33] {
            let values: Vec<i8> = (0..6 * cols).map(|_| rng.gen_range(-8i8..=7)).collect();
            let packed = NibbleMat::from_signed(6, cols, &values);
            let plain = packed.to_residues();
            // The plain path needs the same signed embedding width: use
            // a u32 matrix against u64 ciphertexts via sign extension.
            let v: Vec<u64> = (0..cols).map(|_| rng.gen()).collect();
            let got = packed.matvec(&v);
            // Reference: direct signed accumulation.
            for (r, &g) in got.iter().enumerate() {
                let mut want = 0u64;
                for c in 0..cols {
                    want = want
                        .wrapping_add((values[r * cols + c] as i64 as u64).wrapping_mul(v[c]));
                }
                assert_eq!(g, want, "row {r}, cols {cols}");
            }
            drop(plain);
        }
    }

    #[test]
    fn packed_matvec_matches_unpacked_u32() {
        let mut rng = seeded_rng(2);
        let cols = 24;
        let values: Vec<i8> = (0..4 * cols).map(|_| rng.gen_range(-8i8..=7)).collect();
        let packed = NibbleMat::from_signed(4, cols, &values);
        let plain = packed.to_residues();
        let v: Vec<u32> = (0..cols).map(|_| rng.gen()).collect();
        let got = packed.matvec(&v);
        let want = matvec(&plain, &v);
        assert_eq!(got, want);
    }

    #[test]
    fn from_residues_centers_mod_p() {
        let p = 1u64 << 17;
        let plain = Mat::from_fn(2, 3, |r, c| {
            let signed = (r as i64 * 3 + c as i64) - 4; // -4..=1
            crate::zq::reduce_signed(signed, p) as u32
        });
        let packed = NibbleMat::from_residues_mod_p(&plain, p);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(packed.get(r, c) as i64, (r as i64 * 3 + c as i64) - 4);
            }
        }
    }

    #[test]
    fn storage_is_8x_smaller_than_u32() {
        let values = vec![0i8; 64 * 128];
        let packed = NibbleMat::from_signed(64, 128, &values);
        assert_eq!(packed.storage_bytes(), 64 * 128 / 2);
        assert_eq!(packed.storage_bytes() * 8, 64 * 128 * std::mem::size_of::<u32>());
    }

    #[test]
    #[should_panic(expected = "nibble range")]
    fn out_of_range_entry_rejected() {
        let _ = NibbleMat::from_signed(1, 1, &[9]);
    }

    #[test]
    fn parallel_and_batched_packed_matvec_are_bit_identical() {
        let mut rng = seeded_rng(3);
        let (rows, cols) = (11, 53);
        let values: Vec<i8> = (0..rows * cols).map(|_| rng.gen_range(-8i8..=7)).collect();
        let m = NibbleMat::from_signed(rows, cols, &values);
        let v: Vec<u64> = (0..cols).map(|_| rng.gen()).collect();
        let want = m.matvec(&v);
        for threads in [0usize, 1, 2, 4] {
            assert_eq!(m.matvec_par(&v, threads), want, "threads={threads}");
        }
        let vs: Vec<Vec<u64>> = (0..3).map(|_| (0..cols).map(|_| rng.gen()).collect()).collect();
        let got = m.matvec_batch(&vs, 2);
        for (b, out) in got.iter().enumerate() {
            assert_eq!(out, &m.matvec(&vs[b]), "batch element {b}");
        }
    }
}
