//! Byte-level wire encoding helpers.
//!
//! Every protocol message in the workspace reports a `byte_len()` used
//! by the communication accounting; this module provides the actual
//! serializers so that the accounting is *checkable*: each message
//! type's tests assert `encode().len() == byte_len()`, and decoders
//! reject malformed input instead of panicking.
//!
//! The format is deliberately plain: little-endian fixed-width
//! integers, length-prefixed sequences, no compression (ciphertexts
//! are incompressible; everything compressible is already compressed
//! upstream by `tiptoe-corpus::tzip`).

/// Wire-format decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the message was complete.
    Truncated,
    /// A field held an invalid or out-of-range value.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire message truncated"),
            WireError::Invalid(what) => write!(f, "invalid wire field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// An append-only encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (caller frames them).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn put_len_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v);
    }

    /// Appends a `u32` count followed by little-endian `u32` values.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Appends a `u32` count followed by little-endian `u64` values.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends `values.len()` values of `bits` bits each, LSB-first
    /// bit packing (used for modulus-switched ciphertexts, whose
    /// values are far narrower than a machine word).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 64, or a value does not fit.
    pub fn put_packed_u64(&mut self, values: &[u64], bits: u32) {
        assert!((1..=64).contains(&bits), "bits out of range");
        self.put_u32(values.len() as u32);
        self.put_u8(bits as u8);
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        for &v in values {
            assert!(bits == 64 || v < (1u64 << bits), "value does not fit in {bits} bits");
            acc |= (v as u128) << acc_bits;
            acc_bits += bits;
            while acc_bits >= 8 {
                self.buf.push((acc & 0xff) as u8);
                acc >>= 8;
                acc_bits -= 8;
            }
        }
        if acc_bits > 0 {
            self.buf.push((acc & 0xff) as u8);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes into the encoded message.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A checked sequential decoder.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps an encoded message.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte string (capped at 1 GiB to
    /// bound allocation from hostile inputs).
    pub fn get_len_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        if len > (1 << 30) {
            return Err(WireError::Invalid("length prefix too large"));
        }
        self.take(len)
    }

    /// Reads a `u32`-counted `u32` sequence.
    pub fn get_u32_slice(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.get_u32()? as usize;
        if n > (1 << 28) {
            return Err(WireError::Invalid("sequence too long"));
        }
        (0..n).map(|_| self.get_u32()).collect()
    }

    /// Reads a `u32`-counted `u64` sequence.
    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.get_u32()? as usize;
        if n > (1 << 27) {
            return Err(WireError::Invalid("sequence too long"));
        }
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Reads a sequence written by [`WireWriter::put_packed_u64`].
    pub fn get_packed_u64(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.get_u32()? as usize;
        if n > (1 << 27) {
            return Err(WireError::Invalid("packed sequence too long"));
        }
        let bits = self.get_u8()? as u32;
        if !(1..=64).contains(&bits) {
            return Err(WireError::Invalid("packed bit width"));
        }
        let total_bits = n as u64 * bits as u64;
        let bytes = total_bits.div_ceil(8) as usize;
        let data = self.take(bytes)?;
        let mask: u128 = if bits == 64 { u64::MAX as u128 } else { (1u128 << bits) - 1 };
        let mut out = Vec::with_capacity(n);
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut iter = data.iter();
        for _ in 0..n {
            while acc_bits < bits {
                acc |= (*iter.next().ok_or(WireError::Truncated)? as u128) << acc_bits;
                acc_bits += 8;
            }
            out.push((acc & mask) as u64);
            acc >>= bits;
            acc_bits -= bits;
        }
        Ok(out)
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed (trailing garbage is a
    /// framing bug or an attack).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Invalid("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_sequences() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_len_bytes(b"hello");
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u64_slice(&[9, 10]);
        let bytes = w.finish();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().expect("u8"), 7);
        assert_eq!(r.get_u32().expect("u32"), 0xdead_beef);
        assert_eq!(r.get_u64().expect("u64"), u64::MAX);
        assert_eq!(r.get_len_bytes().expect("bytes"), b"hello");
        assert_eq!(r.get_u32_slice().expect("u32s"), vec![1, 2, 3]);
        assert_eq!(r.get_u64_slice().expect("u64s"), vec![9, 10]);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = WireWriter::new();
        w.put_u64_slice(&[1, 2, 3, 4]);
        let bytes = w.finish();
        for cut in [0usize, 3, 11, bytes.len() - 1] {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(r.get_u64_slice().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(5);
        let mut bytes = w.finish();
        bytes.push(0);
        let mut r = WireReader::new(&bytes);
        let _ = r.get_u32().expect("u32");
        assert_eq!(r.finish(), Err(WireError::Invalid("trailing bytes")));
    }

    #[test]
    fn packed_u64_roundtrips_at_every_width() {
        for bits in [1u32, 7, 8, 9, 31, 32, 44, 63, 64] {
            let top = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let values = vec![0u64, 1, top / 2, top];
            let mut w = WireWriter::new();
            w.put_packed_u64(&values, bits);
            let bytes = w.finish();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.get_packed_u64().expect("packed"), values, "bits={bits}");
            r.finish().expect("consumed");
            // Size: 5-byte header + ceil(n*bits/8).
            assert_eq!(bytes.len(), 5 + (4 * bits as usize).div_ceil(8));
        }
    }

    #[test]
    fn packed_u64_detects_truncation() {
        let mut w = WireWriter::new();
        w.put_packed_u64(&[(1u64 << 44) - 1; 9], 44);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes[..bytes.len() - 1]);
        assert!(r.get_packed_u64().is_err());
    }

    #[test]
    fn hostile_length_prefixes_bounded() {
        // A length prefix of u32::MAX must not attempt the allocation.
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_len_bytes().is_err());
        let mut r2 = WireReader::new(&bytes);
        assert!(r2.get_u64_slice().is_err());
    }
}
