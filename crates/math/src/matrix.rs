//! Dense row-major matrices and the matrix-vector kernels that
//! dominate Tiptoe's server-side cost.
//!
//! The ranking service's per-query work is one product `M · ct` where
//! `M` holds small plaintext entries (quantized embeddings, at most
//! `log2 p ≤ 17` bits) and `ct` is a ciphertext vector of full machine
//! words (paper §4.2: "roughly 2·N·d 64-bit word operations"). The
//! kernels below therefore take a narrow (`u32`) matrix and a wide
//! ([`Word`]) vector, with wrapping arithmetic providing the mod-`2^k`
//! reduction for free.

use crate::zq::Word;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Mat<T> {
    /// An all-default (`zero`) matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![T::default(); rows * cols] }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element count (`rows * cols`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline(always)]
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline(always)]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline(always)]
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// A mutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline(always)]
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        assert!(row < self.rows, "row out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The backing row-major buffer.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the backing row-major buffer.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Mat<T> {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// A copy of the column range `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > cols`.
    pub fn column_slice(&self, start: usize, end: usize) -> Mat<T> {
        assert!(start <= end && end <= self.cols, "column range out of bounds");
        let mut out = Mat::zeros(self.rows, end - start);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        out
    }
}

/// `out = M · v` over `Z_{2^k}` with a narrow matrix and wide vector.
///
/// This is the SimplePIR `Apply` hot loop: entries of `db` are already
/// reduced modulo the plaintext modulus and are treated as elements of
/// `Z_{2^k}`; the wrap-around of [`Word`] arithmetic performs the
/// modular reduction.
///
/// Runs on the best kernel available: the L1-tiled loop over the
/// runtime-dispatched [`Word::dot_narrow`] (the widest SIMD tier the
/// CPU supports, see [`crate::simd`]). Bit-identical to the
/// pinned-scalar [`matvec_scalar`] at every tier — wrapping mod-`2^k`
/// sums are associative and commutative, so neither the tiling nor
/// the lane grouping can change any output word.
///
/// # Panics
///
/// Panics if `v.len() != db.cols()`.
pub fn matvec<W: Word>(db: &Mat<u32>, v: &[W]) -> Vec<W> {
    matvec_blocked(db, v)
}

/// Pinned-scalar `out = M · v`: identical math to [`matvec`] but
/// always on the portable four-way-unrolled kernel, never the SIMD
/// tiers. This is the benchmark baseline and the oracle the dispatch
/// property tests compare against; serving paths use [`matvec`].
pub fn matvec_scalar<W: Word>(db: &Mat<u32>, v: &[W]) -> Vec<W> {
    assert_eq!(v.len(), db.cols(), "dimension mismatch");
    let mut out = Vec::with_capacity(db.rows());
    for i in 0..db.rows() {
        out.push(dot_row(db.row(i), v));
    }
    out
}

/// Inner product of one narrow row with a wide vector on the portable
/// scalar kernel (four-way unrolled to keep the MAC pipeline busy).
///
/// This is the scalar *reference*: the runtime-dispatched
/// [`Word::dot_narrow`] is property-tested bit-identical to it at
/// every [`crate::simd::KernelTier`].
#[inline]
pub fn dot_row<W: Word>(row: &[u32], v: &[W]) -> W {
    crate::simd::dot_narrow_scalar(row, v)
}

/// Column-tile width (in elements) of the cache-blocked kernels: 2048
/// `u64` words = 16 KiB, so one tile of `v` stays resident in L1 while
/// every row's matching segment streams past it.
pub const TILE_COLS: usize = 2048;

/// Cache-blocked `out = M · v`: processes `v` one L1-sized column tile
/// at a time so each tile is loaded once per *tile* instead of once
/// per *row*. Bit-identical to [`matvec`] (wrapping mod-`2^k` sums are
/// associative, so regrouping the additions cannot change the result).
///
/// # Panics
///
/// Panics if `v.len() != db.cols()`.
pub fn matvec_blocked<W: Word>(db: &Mat<u32>, v: &[W]) -> Vec<W> {
    assert_eq!(v.len(), db.cols(), "dimension mismatch");
    let mut out = vec![W::ZERO; db.rows()];
    matvec_rows_into(db, 0, v, &mut out);
    out
}

/// Blocked matvec of rows `[row_start, row_start + out.len())` into
/// `out` — the span-level worker shared by the blocked and parallel
/// entry points.
///
/// # Panics
///
/// Panics if the row range exceeds `db.rows()` or `v.len()` differs
/// from `db.cols()`.
pub fn matvec_rows_into<W: Word>(db: &Mat<u32>, row_start: usize, v: &[W], out: &mut [W]) {
    assert!(row_start + out.len() <= db.rows(), "row range out of bounds");
    assert_eq!(v.len(), db.cols(), "dimension mismatch");
    out.fill(W::ZERO);
    let cols = db.cols();
    for tile_start in (0..cols).step_by(TILE_COLS) {
        let tile_end = (tile_start + TILE_COLS).min(cols);
        let vt = &v[tile_start..tile_end];
        for (off, o) in out.iter_mut().enumerate() {
            let seg = &db.row(row_start + off)[tile_start..tile_end];
            *o = o.wadd(W::dot_narrow(seg, vt));
        }
    }
}

/// Row-parallel, cache-blocked `out = M · v`: each thread computes a
/// contiguous span of output rows with [`matvec_rows_into`].
/// `num_threads == 0` means one thread per core. Bit-identical to
/// [`matvec`].
///
/// # Panics
///
/// Panics if `v.len() != db.cols()`.
pub fn matvec_par<W: Word>(db: &Mat<u32>, v: &[W], num_threads: usize) -> Vec<W> {
    assert_eq!(v.len(), db.cols(), "dimension mismatch");
    let mut out = vec![W::ZERO; db.rows()];
    crate::par::par_spans_mut(&mut out, 1, num_threads, |start, span| {
        matvec_rows_into(db, start, v, span);
    });
    out
}

/// Batched `out[b] = M · vs[b]`: answers `B` query vectors in **one
/// pass over the database**, amortizing the DRAM traffic for `M`
/// (which dominates: the matrix is ℓ×m words, the vectors only m) —
/// the matrix-matrix form of SimplePIR's `Apply`. Each output is
/// bit-identical to `matvec(db, &vs[b])`.
///
/// # Panics
///
/// Panics if any vector's length differs from `db.cols()`.
pub fn matvec_batch<W: Word>(db: &Mat<u32>, vs: &[Vec<W>], num_threads: usize) -> Vec<Vec<W>> {
    for v in vs {
        assert_eq!(v.len(), db.cols(), "dimension mismatch");
    }
    if vs.is_empty() {
        return Vec::new();
    }
    let rows = db.rows();
    let batch = vs.len();
    // Row-major (row, batch) accumulator so one row's products for all
    // vectors are computed while the row is hot in cache.
    let mut flat = vec![W::ZERO; rows * batch];
    crate::par::par_spans_mut(&mut flat, batch, num_threads, |start, span| {
        let row0 = start / batch;
        let cols = db.cols();
        for tile_start in (0..cols).step_by(TILE_COLS) {
            let tile_end = (tile_start + TILE_COLS).min(cols);
            for (local, row_out) in span.chunks_exact_mut(batch).enumerate() {
                let seg = &db.row(row0 + local)[tile_start..tile_end];
                for (o, v) in row_out.iter_mut().zip(vs.iter()) {
                    *o = o.wadd(W::dot_narrow(seg, &v[tile_start..tile_end]));
                }
            }
        }
    });
    // Transpose the flat accumulator into per-vector outputs.
    let mut outs = vec![Vec::with_capacity(rows); batch];
    for row_out in flat.chunks_exact(batch) {
        for (out, &x) in outs.iter_mut().zip(row_out.iter()) {
            out.push(x);
        }
    }
    outs
}

/// `out = M · A` over `Z_{2^k}`: the SimplePIR hint computation.
///
/// `db` is the narrow plaintext matrix (`ℓ × m`), `a` the wide LWE
/// public matrix (`m × n`); the result is the `ℓ × n` hint. Uses an
/// i-k-j loop order so the inner loop streams rows of `a`.
///
/// # Panics
///
/// Panics if `db.cols() != a.rows()`.
pub fn matmul_hint<W: Word>(db: &Mat<u32>, a: &Mat<W>) -> Mat<W> {
    assert_eq!(db.cols(), a.rows(), "dimension mismatch");
    let mut out: Mat<W> = Mat::zeros(db.rows(), a.cols());
    for i in 0..db.rows() {
        let db_row = db.row(i);
        let out_row = out.row_mut(i);
        for (k, &m_ik) in db_row.iter().enumerate() {
            if m_ik == 0 {
                continue;
            }
            W::axpy(out_row, W::from_u64(m_ik as u64), a.row(k));
        }
    }
    out
}

/// `out = H · s` over `Z_{2^k}` for a wide matrix and wide vector
/// (hint-times-secret during decryption).
///
/// # Panics
///
/// Panics if `s.len() != h.cols()`.
pub fn matvec_wide<W: Word>(h: &Mat<W>, s: &[W]) -> Vec<W> {
    assert_eq!(s.len(), h.cols(), "dimension mismatch");
    let mut out = Vec::with_capacity(h.rows());
    for i in 0..h.rows() {
        out.push(W::dot_wide(h.row(i), s));
    }
    out
}

/// Row-parallel [`matvec_wide`]; bit-identical (wrapping sums are
/// associative and commutative, so neither the row split nor the
/// dispatched kernel's lane grouping changes any output word).
///
/// # Panics
///
/// Panics if `s.len() != h.cols()`.
pub fn matvec_wide_par<W: Word>(h: &Mat<W>, s: &[W], num_threads: usize) -> Vec<W> {
    assert_eq!(s.len(), h.cols(), "dimension mismatch");
    let mut out = vec![W::ZERO; h.rows()];
    crate::par::par_spans_mut(&mut out, 1, num_threads, |start, span| {
        for (off, o) in span.iter_mut().enumerate() {
            *o = W::dot_wide(h.row(start + off), s);
        }
    });
    out
}

/// Row-parallel [`matmul_hint`]: each thread computes a contiguous
/// block of hint rows with the same i-k-j loop order, so every output
/// entry's accumulation order — and therefore its value — is
/// unchanged.
///
/// # Panics
///
/// Panics if `db.cols() != a.rows()`.
pub fn matmul_hint_par<W: Word>(db: &Mat<u32>, a: &Mat<W>, num_threads: usize) -> Mat<W> {
    assert_eq!(db.cols(), a.rows(), "dimension mismatch");
    let n = a.cols();
    let mut out: Mat<W> = Mat::zeros(db.rows(), n);
    crate::par::par_spans_mut(out.data_mut(), n, num_threads, |start, span| {
        let row0 = start / n;
        for (local, out_row) in span.chunks_exact_mut(n).enumerate() {
            let db_row = db.row(row0 + local);
            for (k, &m_ik) in db_row.iter().enumerate() {
                if m_ik == 0 {
                    continue;
                }
                W::axpy(out_row, W::from_u64(m_ik as u64), a.row(k));
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_naive_u64() {
        let db = Mat::from_fn(3, 5, |i, j| (i * 5 + j) as u32);
        let v: Vec<u64> = (0..5).map(|j| (j as u64 + 1) * 1_000_000_007).collect();
        let got = matvec(&db, &v);
        for (i, &g) in got.iter().enumerate() {
            let mut want = 0u64;
            for (j, &x) in v.iter().enumerate() {
                want = want.wrapping_add((db.get(i, j) as u64).wrapping_mul(x));
            }
            assert_eq!(g, want);
        }
    }

    #[test]
    fn matvec_matches_naive_u32() {
        let db = Mat::from_fn(4, 7, |i, j| (i * 31 + j * 17) as u32);
        let v: Vec<u32> = (0..7).map(|j| (j as u32 + 1).wrapping_mul(0x9e37_79b9)).collect();
        let got = matvec(&db, &v);
        for (i, &g) in got.iter().enumerate() {
            let mut want = 0u32;
            for (j, &x) in v.iter().enumerate() {
                want = want.wrapping_add(db.get(i, j).wrapping_mul(x));
            }
            assert_eq!(g, want);
        }
    }

    #[test]
    fn matmul_hint_matches_matvec_per_column() {
        let db = Mat::from_fn(3, 4, |i, j| (i + 2 * j) as u32);
        let a: Mat<u64> = Mat::from_fn(4, 2, |i, j| (i as u64 + 1) * 7 + j as u64 * 1e15 as u64);
        let h = matmul_hint(&db, &a);
        assert_eq!(h.rows(), 3);
        assert_eq!(h.cols(), 2);
        for j in 0..2 {
            let col: Vec<u64> = (0..4).map(|k| a.get(k, j)).collect();
            let want = matvec(&db, &col);
            for (i, &w) in want.iter().enumerate() {
                assert_eq!(h.get(i, j), w);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(3, 5, |i, j| i * 10 + j);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn column_slice_extracts_block() {
        let m = Mat::from_fn(2, 6, |i, j| i * 6 + j);
        let s = m.column_slice(2, 5);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.row(0), &[2, 3, 4]);
        assert_eq!(s.row(1), &[8, 9, 10]);
    }

    #[test]
    fn matvec_wide_matches_naive() {
        let h: Mat<u64> = Mat::from_fn(2, 3, |i, j| (i as u64) << 60 | (j as u64 + 1));
        let s = vec![u64::MAX, 3, 1 << 62];
        let got = matvec_wide(&h, &s);
        for (i, &g) in got.iter().enumerate() {
            let mut want = 0u64;
            for (j, &x) in s.iter().enumerate() {
                want = want.wrapping_add(h.get(i, j).wrapping_mul(x));
            }
            assert_eq!(g, want);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_shape() {
        let db = Mat::from_fn(2, 3, |_, _| 1u32);
        let v = vec![1u64; 4];
        let _ = matvec(&db, &v);
    }

    /// A shape that exercises tile boundaries: more columns than one
    /// tile, a ragged final tile, and a row count that splits unevenly
    /// over threads.
    fn wide_case() -> (Mat<u32>, Vec<u64>) {
        let cols = TILE_COLS + 37;
        let db = Mat::from_fn(13, cols, |i, j| (i * 2654435761 + j * 40503) as u32);
        let v: Vec<u64> =
            (0..cols).map(|j| (j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead).collect();
        (db, v)
    }

    #[test]
    fn blocked_matvec_is_bit_identical() {
        let (db, v) = wide_case();
        assert_eq!(matvec_blocked(&db, &v), matvec(&db, &v));
    }

    #[test]
    fn dispatched_matvec_matches_pinned_scalar() {
        let (db, v) = wide_case();
        assert_eq!(matvec(&db, &v), matvec_scalar(&db, &v));
        let v32: Vec<u32> = v.iter().map(|&x| x as u32).collect();
        assert_eq!(matvec(&db, &v32), matvec_scalar(&db, &v32));
    }

    #[test]
    fn parallel_matvec_is_bit_identical_for_any_thread_count() {
        let (db, v) = wide_case();
        let want = matvec(&db, &v);
        for threads in [0usize, 1, 2, 3, 5, 16] {
            assert_eq!(matvec_par(&db, &v, threads), want, "threads={threads}");
        }
    }

    #[test]
    fn batched_matvec_matches_per_vector_results() {
        let (db, v) = wide_case();
        let vs: Vec<Vec<u64>> = (0..5)
            .map(|b| v.iter().map(|&x| x.wrapping_mul(b as u64 + 1)).collect())
            .collect();
        let got = matvec_batch(&db, &vs, 2);
        assert_eq!(got.len(), vs.len());
        for (b, out) in got.iter().enumerate() {
            assert_eq!(out, &matvec(&db, &vs[b]), "batch element {b}");
        }
        assert!(matvec_batch::<u64>(&db, &[], 2).is_empty());
    }

    #[test]
    fn parallel_hint_and_wide_kernels_are_bit_identical() {
        let db = Mat::from_fn(9, 31, |i, j| ((i * 31 + j) % 7) as u32);
        let a: Mat<u64> = Mat::from_fn(31, 6, |i, j| ((i as u64) << 32) | ((j as u64 + 1) * 77));
        assert_eq!(matmul_hint_par(&db, &a, 3), matmul_hint(&db, &a));
        let h: Mat<u64> = Mat::from_fn(10, 8, |i, j| (i as u64 + 3).wrapping_mul(j as u64 ^ 55));
        let s: Vec<u64> = (0..8).map(|j| u64::MAX - j).collect();
        assert_eq!(matvec_wide_par(&h, &s, 4), matvec_wide(&h, &s));
    }
}
