//! Deterministic randomness plumbing.
//!
//! Every experiment in the workspace must be exactly reproducible, so
//! all randomness flows from explicit seeds. Sub-seeds are derived with
//! a SplitMix64 step so that independent components (LWE matrix
//! expansion, noise sampling, corpus generation, …) never share a
//! stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent sub-seed from a parent seed and a domain tag.
///
/// Uses the SplitMix64 finalizer, which is a bijective mixer with full
/// avalanche; distinct `(seed, tag)` pairs give unrelated streams.
pub fn derive_seed(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_tags_give_different_seeds() {
        let s = 1234567;
        let derived: Vec<u64> = (0..32).map(|t| derive_seed(s, t)).collect();
        let mut unique = derived.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), derived.len());
    }

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
    }
}
