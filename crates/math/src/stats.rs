//! Small statistics helpers used by the benchmark harness and the
//! search-quality evaluation.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `0.0` for slices shorter than 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `q`-th percentile (0..=100) by linear interpolation.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "q out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Format a byte count using binary units (KiB/MiB/GiB), as the paper
/// reports communication costs.
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.1} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.1} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

/// Format a duration in seconds with an adaptive unit.
pub fn fmt_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_constant() {
        let xs = [5.0; 8];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(std_dev(&xs), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    fn byte_formatting_uses_binary_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(56_900_000), "54.3 MiB");
        assert_eq!(fmt_bytes(3 << 30), "3.0 GiB");
    }

    #[test]
    fn seconds_formatting_is_adaptive() {
        assert_eq!(fmt_seconds(2.7), "2.70 s");
        assert_eq!(fmt_seconds(0.0045), "4.50 ms");
        assert_eq!(fmt_seconds(0.0000032), "3.20 µs");
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }
}
