//! Scoped-thread helpers for the row-parallel server kernels.
//!
//! The hot kernels ([`crate::matrix::matvec`] and the hint
//! preprocessing in `tiptoe-lwe`) compute independent output rows, so
//! they parallelize by handing each thread a contiguous span of the
//! output. Everything here is plain `std::thread::scope` fan-out — no
//! work stealing, no runtime — because the spans are uniform and the
//! kernels are bandwidth-bound: static partitioning loses nothing and
//! keeps the code dependency-free.
//!
//! Determinism: the helpers only decide *which thread* computes each
//! span; the per-element arithmetic and its order are unchanged, so
//! every parallel kernel built on them is bit-identical to its scalar
//! counterpart (enforced by the workspace property tests).
//!
//! Thread-count policy: `0` means "one thread per available core"
//! (capped by the `TIPTOE_THREADS` environment variable when set), any
//! other value is used as given; both are clamped so no thread ends up
//! without a full span of work.

/// Number of worker threads meant by a `num_threads` knob value of 0:
/// one per available core, overridable with `TIPTOE_THREADS`.
pub fn max_threads() -> usize {
    let detected = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    match std::env::var("TIPTOE_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n, // explicit override wins
        _ => detected,
    }
}

/// Resolves a `num_threads` knob (`0` = auto) against the number of
/// independent work items, so no thread is spawned without work.
pub fn effective_threads(num_threads: usize, work_items: usize) -> usize {
    let requested = if num_threads == 0 { max_threads() } else { num_threads };
    requested.clamp(1, work_items.max(1))
}

/// Runs `f(start, span)` over contiguous spans of `data`, one span per
/// thread, with span boundaries aligned to multiples of `align`
/// elements (an output row, say). `start` is the element offset of the
/// span within `data`. With one effective thread, runs inline on the
/// caller's stack — the scalar path has zero spawn overhead.
///
/// # Panics
///
/// Panics if `align == 0` or `data.len()` is not a multiple of
/// `align`.
pub fn par_spans_mut<T: Send>(
    data: &mut [T],
    align: usize,
    num_threads: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(align > 0, "span alignment must be positive");
    assert_eq!(data.len() % align, 0, "data length must be a multiple of the alignment");
    let items = data.len() / align;
    let threads = effective_threads(num_threads, items);
    if threads <= 1 {
        f(0, data);
        return;
    }
    // Ceil-divide items over threads; the tail thread takes the short
    // span.
    let items_per = items.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = (items_per * align).min(rest.len());
            let (span, tail) = rest.split_at_mut(take);
            let f = &f;
            scope.spawn(move || f(start, span));
            start += take;
            rest = tail;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_clamps_to_work() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(5, 0), 1);
        assert!(effective_threads(0, 1 << 20) >= 1);
    }

    #[test]
    fn spans_cover_everything_exactly_once() {
        for threads in [1usize, 2, 3, 7] {
            let mut data = vec![0u64; 60];
            par_spans_mut(&mut data, 4, threads, |start, span| {
                for (off, slot) in span.iter_mut().enumerate() {
                    *slot = (start + off) as u64 + 1;
                }
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, i as u64 + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn spans_align_to_row_boundaries() {
        let mut data = vec![0usize; 40];
        par_spans_mut(&mut data, 8, 3, |start, span| {
            assert_eq!(start % 8, 0);
            assert_eq!(span.len() % 8, 0);
            span.fill(start / 8);
        });
        for row in 0..5 {
            let owner = data[row * 8];
            assert!(data[row * 8..(row + 1) * 8].iter().all(|&x| x == owner));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the alignment")]
    fn misaligned_data_rejected() {
        let mut data = vec![0u8; 10];
        par_spans_mut(&mut data, 3, 2, |_, _| {});
    }
}
