//! Arithmetic over `Z_q` for power-of-two ciphertext moduli.
//!
//! Tiptoe's inner (SimplePIR-style) encryption scheme works over
//! `q = 2^64` for the ranking step and `q = 2^32` for the URL-retrieval
//! step (paper, Appendix C). For power-of-two `q` matching a machine
//! word, reduction modulo `q` is exactly the hardware wrap-around, so
//! the [`Word`] trait below is a thin veneer over wrapping integer
//! operations. Keeping it a trait lets the LWE layer be generic over
//! both moduli without duplicating code.

use std::fmt::Debug;

use crate::wire::{WireError, WireReader, WireWriter};

/// A machine word serving as an element of `Z_{2^BITS}`.
///
/// Implemented for [`u32`] (`q = 2^32`) and [`u64`] (`q = 2^64`). All
/// operations wrap, which is the correct reduction for these moduli.
pub trait Word:
    Copy + Clone + Debug + Default + PartialEq + Eq + Send + Sync + 'static
{
    /// Bit width of the modulus (`log2 q`).
    const BITS: u32;

    /// The additive identity.
    const ZERO: Self;

    /// The multiplicative identity.
    const ONE: Self;

    /// Wrapping addition modulo `2^BITS`.
    fn wadd(self, rhs: Self) -> Self;

    /// Wrapping subtraction modulo `2^BITS`.
    fn wsub(self, rhs: Self) -> Self;

    /// Wrapping multiplication modulo `2^BITS`.
    fn wmul(self, rhs: Self) -> Self;

    /// Wrapping negation modulo `2^BITS`.
    fn wneg(self) -> Self;

    /// Embeds a `u64`, truncating to the word width.
    fn from_u64(x: u64) -> Self;

    /// Widens to `u64` (zero-extending).
    fn to_u64(self) -> u64;

    /// Embeds a signed value as its representative modulo `2^BITS`.
    fn from_i64(x: i64) -> Self;

    /// Interprets this word as a signed representative in
    /// `[-2^(BITS-1), 2^(BITS-1))`.
    fn to_signed(self) -> i64;

    /// Logical right shift.
    fn shr(self, k: u32) -> Self;

    /// Logical left shift (wrapping).
    fn shl(self, k: u32) -> Self;

    /// Appends this word to a wire message at its native width.
    fn put_wire(self, w: &mut WireWriter);

    /// Reads one word from a wire message at its native width.
    ///
    /// # Errors
    ///
    /// Fails if the input is truncated.
    fn get_wire(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Runtime-dispatched inner product of a narrow `u32` row with a
    /// wide vector — the matvec hot loop. Bit-identical to
    /// [`crate::simd::dot_narrow_scalar`] at every
    /// [`crate::simd::KernelTier`] (wrapping mod-`2^BITS` sums are
    /// associative and commutative, so lane regrouping cannot change
    /// the result).
    ///
    /// # Panics
    ///
    /// May panic (and in release mode truncates to the shorter length)
    /// if the slices differ in length; callers keep them equal.
    fn dot_narrow(row: &[u32], v: &[Self]) -> Self;

    /// Runtime-dispatched inner product of two wide vectors
    /// (hint-times-secret during decryption). Bit-identical to
    /// [`crate::simd::dot_wide_scalar`] at every tier.
    fn dot_wide(a: &[Self], b: &[Self]) -> Self;

    /// Runtime-dispatched `acc[i] += w·x[i]` — the hint-preprocessing
    /// inner loop (`w` may be a sign-extended full-width multiplier).
    /// Bit-identical to [`crate::simd::axpy_scalar`] at every tier.
    fn axpy(acc: &mut [Self], w: Self, x: &[Self]);
}

impl Word for u32 {
    const BITS: u32 = 32;
    const ZERO: Self = 0;
    const ONE: Self = 1;

    #[inline(always)]
    fn wadd(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }

    #[inline(always)]
    fn wsub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }

    #[inline(always)]
    fn wmul(self, rhs: Self) -> Self {
        self.wrapping_mul(rhs)
    }

    #[inline(always)]
    fn wneg(self) -> Self {
        self.wrapping_neg()
    }

    #[inline(always)]
    fn from_u64(x: u64) -> Self {
        x as u32
    }

    #[inline(always)]
    fn to_u64(self) -> u64 {
        self as u64
    }

    #[inline(always)]
    fn from_i64(x: i64) -> Self {
        x as u32
    }

    #[inline(always)]
    fn to_signed(self) -> i64 {
        self as i32 as i64
    }

    #[inline(always)]
    fn shr(self, k: u32) -> Self {
        self >> k
    }

    #[inline(always)]
    fn shl(self, k: u32) -> Self {
        self.wrapping_shl(k)
    }

    fn put_wire(self, w: &mut WireWriter) {
        w.put_u32(self);
    }

    fn get_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_u32()
    }

    #[inline(always)]
    fn dot_narrow(row: &[u32], v: &[Self]) -> Self {
        crate::simd::dot_u32_u32(row, v)
    }

    #[inline(always)]
    fn dot_wide(a: &[Self], b: &[Self]) -> Self {
        // u32 "wide" operands have the same shape as a narrow row, so
        // the narrow kernel is the dispatched implementation.
        crate::simd::dot_u32_u32(a, b)
    }

    #[inline(always)]
    fn axpy(acc: &mut [Self], w: Self, x: &[Self]) {
        crate::simd::axpy_u32(acc, w, x)
    }
}

impl Word for u64 {
    const BITS: u32 = 64;
    const ZERO: Self = 0;
    const ONE: Self = 1;

    #[inline(always)]
    fn wadd(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }

    #[inline(always)]
    fn wsub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }

    #[inline(always)]
    fn wmul(self, rhs: Self) -> Self {
        self.wrapping_mul(rhs)
    }

    #[inline(always)]
    fn wneg(self) -> Self {
        self.wrapping_neg()
    }

    #[inline(always)]
    fn from_u64(x: u64) -> Self {
        x
    }

    #[inline(always)]
    fn to_u64(self) -> u64 {
        self
    }

    #[inline(always)]
    fn from_i64(x: i64) -> Self {
        x as u64
    }

    #[inline(always)]
    fn to_signed(self) -> i64 {
        self as i64
    }

    #[inline(always)]
    fn shr(self, k: u32) -> Self {
        self >> k
    }

    #[inline(always)]
    fn shl(self, k: u32) -> Self {
        self.wrapping_shl(k)
    }

    fn put_wire(self, w: &mut WireWriter) {
        w.put_u64(self);
    }

    fn get_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }

    #[inline(always)]
    fn dot_narrow(row: &[u32], v: &[Self]) -> Self {
        crate::simd::dot_u32_u64(row, v)
    }

    #[inline(always)]
    fn dot_wide(a: &[Self], b: &[Self]) -> Self {
        crate::simd::dot_wide_u64(a, b)
    }

    #[inline(always)]
    fn axpy(acc: &mut [Self], w: Self, x: &[Self]) {
        crate::simd::axpy_u64(acc, w, x)
    }
}

/// Rounds `x / 2^shift` to the nearest integer, staying in `Z_{2^BITS}`.
///
/// This is the rounding step of Regev decryption: the plaintext sits in
/// the high-order bits and the (bounded) noise below is rounded away.
#[inline(always)]
pub fn round_shift<W: Word>(x: W, shift: u32) -> W {
    if shift == 0 {
        return x;
    }
    let half = W::ONE.shl(shift - 1);
    x.wadd(half).shr(shift)
}

/// Centers `x mod m` into the signed range `(-m/2, m/2]` (for `m` a
/// power of two, `[-m/2, m/2)`).
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn center(x: u64, m: u64) -> i64 {
    assert!(m != 0, "modulus must be nonzero");
    let r = x % m;
    if r > m / 2 {
        -((m - r) as i64)
    } else {
        r as i64
    }
}

/// Reduces a signed value into `[0, m)`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn reduce_signed(x: i64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    let m_i = m as i128;
    let r = (x as i128).rem_euclid(m_i);
    r as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_ops_match_u128_reference() {
        let a: u64 = 0xdead_beef_cafe_f00d;
        let b: u64 = 0xffff_ffff_0000_0001;
        assert_eq!(a.wadd(b) as u128, (a as u128 + b as u128) % (1u128 << 64));
        assert_eq!(a.wmul(b) as u128, (a as u128 * b as u128) % (1u128 << 64));
        assert_eq!(a.wsub(b), a.wrapping_sub(b));
    }

    #[test]
    fn word_signed_roundtrip() {
        for x in [-5i64, -1, 0, 1, 7, i32::MAX as i64, i32::MIN as i64] {
            assert_eq!(u64::from_i64(x).to_signed(), x);
            let y = u32::from_i64(x).to_signed();
            assert_eq!(y, x as i32 as i64);
        }
    }

    #[test]
    fn round_shift_rounds_to_nearest() {
        // 12 / 8 = 1.5 -> 2, 11 / 8 = 1.375 -> 1.
        assert_eq!(round_shift(12u64, 3), 2);
        assert_eq!(round_shift(11u64, 3), 1);
        assert_eq!(round_shift(0u64, 3), 0);
        assert_eq!(round_shift(7u32, 0), 7);
    }

    #[test]
    fn center_is_symmetric() {
        assert_eq!(center(0, 16), 0);
        assert_eq!(center(7, 16), 7);
        assert_eq!(center(8, 16), 8);
        assert_eq!(center(9, 16), -7);
        assert_eq!(center(15, 16), -1);
    }

    #[test]
    fn reduce_signed_inverts_center() {
        for m in [16u64, 17, 1 << 20] {
            for x in 0..m.min(64) {
                assert_eq!(reduce_signed(center(x, m), m), x % m);
            }
        }
    }
}
