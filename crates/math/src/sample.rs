//! Lattice noise distributions.
//!
//! Tiptoe's inner scheme samples errors from a rounded continuous
//! Gaussian (σ = 81 920 for the ranking modulus `q = 2^64`, σ = 6.4 for
//! the URL modulus `q = 2^32`; paper Appendix C) and secrets from the
//! ternary distribution. The SimplePIR reference implementation uses
//! the same rounded-Gaussian construction.

use rand::Rng;

/// Samples a rounded continuous Gaussian with standard deviation
/// `sigma`, returned as a signed integer.
///
/// Uses the Box-Muller transform; for the σ values used in this
/// workspace (far above the smoothing parameter) the statistical
/// distance from a discrete Gaussian is negligible.
pub fn gaussian_i64<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> i64 {
    debug_assert!(sigma >= 0.0);
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let mag = sigma * (-2.0 * u1.ln()).sqrt();
        let z = mag * (2.0 * std::f64::consts::PI * u2).cos();
        // Rejection of the (measure-zero in practice) tail that would
        // not fit an i64 keeps the cast sound.
        if z.abs() < 9.0e18 {
            return z.round() as i64;
        }
    }
}

/// Fills a vector with rounded-Gaussian samples.
pub fn gaussian_vec<R: Rng + ?Sized>(rng: &mut R, sigma: f64, len: usize) -> Vec<i64> {
    (0..len).map(|_| gaussian_i64(rng, sigma)).collect()
}

/// Samples from the ternary distribution `{-1, 0, 1}` (uniform).
pub fn ternary_i64<R: Rng + ?Sized>(rng: &mut R) -> i64 {
    rng.gen_range(-1i64..=1)
}

/// Fills a vector with ternary samples.
pub fn ternary_vec<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<i64> {
    (0..len).map(|_| ternary_i64(rng)).collect()
}

/// Fills a vector with uniform values in `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn uniform_vec<R: Rng + ?Sized>(rng: &mut R, bound: u64, len: usize) -> Vec<u64> {
    assert!(bound > 0, "bound must be positive");
    (0..len).map(|_| rng.gen_range(0..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = seeded_rng(5);
        let sigma = 100.0;
        let n = 20_000;
        let samples = gaussian_vec(&mut rng, sigma, n);
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        let var = samples.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 3.0, "mean {mean} too far from 0");
        let std = var.sqrt();
        assert!((std - sigma).abs() / sigma < 0.05, "std {std} too far from {sigma}");
    }

    #[test]
    fn gaussian_zero_sigma_is_zero() {
        let mut rng = seeded_rng(6);
        for _ in 0..32 {
            assert_eq!(gaussian_i64(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn ternary_hits_all_values() {
        let mut rng = seeded_rng(7);
        let v = ternary_vec(&mut rng, 3000);
        assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        for target in -1..=1 {
            let count = v.iter().filter(|&&x| x == target).count();
            // Each value should appear with probability 1/3 +- a lot of slack.
            assert!(count > 700 && count < 1300, "value {target} count {count}");
        }
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = seeded_rng(8);
        let v = uniform_vec(&mut rng, 10, 1000);
        assert!(v.iter().all(|&x| x < 10));
        assert!(v.contains(&0));
        assert!(v.contains(&9));
    }
}
