//! Negacyclic number-theoretic transforms over NTT-friendly primes.
//!
//! The outer (ring-LWE) encryption scheme multiplies polynomials in
//! `R_Q = Z_Q[x]/(x^N + 1)`. With `Q ≡ 1 (mod 2N)` a primitive `2N`-th
//! root of unity `ψ` exists, and the negacyclic convolution becomes a
//! pointwise product in the ψ-twisted NTT domain. We use the standard
//! merged-twist butterflies (Cooley-Tukey forward / Gentleman-Sande
//! inverse with ψ-powers stored in bit-reversed order) and Shoup
//! precomputed-quotient modular multiplication in the hot loop.

use crate::modp::{find_ntt_prime, PrimeModulus};

/// Precomputed tables for a negacyclic NTT of size `N` over prime `Q`.
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    modulus: PrimeModulus,
    /// ψ-powers in bit-reversed order (forward transform).
    psi_rev: Vec<u64>,
    /// Shoup quotients for `psi_rev`.
    psi_rev_shoup: Vec<u64>,
    /// ψ^{-1}-powers in bit-reversed order (inverse transform).
    inv_psi_rev: Vec<u64>,
    /// Shoup quotients for `inv_psi_rev`.
    inv_psi_rev_shoup: Vec<u64>,
    /// `N^{-1} mod Q`, folded into the last inverse stage.
    n_inv: u64,
    n_inv_shoup: u64,
}

/// Multiplies `a * b mod q` using Shoup's trick, where
/// `b_shoup = floor(b * 2^64 / q)` was precomputed.
#[inline(always)]
fn mul_shoup(a: u64, b: u64, b_shoup: u64, q: u64) -> u64 {
    let hi = ((a as u128 * b_shoup as u128) >> 64) as u64;
    let r = a.wrapping_mul(b).wrapping_sub(hi.wrapping_mul(q));
    if r >= q {
        r - q
    } else {
        r
    }
}

#[inline(always)]
fn shoup_quotient(b: u64, q: u64) -> u64 {
    (((b as u128) << 64) / q as u128) as u64
}

impl NttTable {
    /// Builds NTT tables for ring degree `n` (a power of two) over the
    /// largest NTT-friendly prime below `2^q_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two at least 4, or if no
    /// suitable prime exists (see [`find_ntt_prime`]).
    pub fn new(n: usize, q_bits: u32) -> Self {
        let q = find_ntt_prime(q_bits, 2 * n as u64);
        Self::with_modulus(n, q)
    }

    /// Builds NTT tables for ring degree `n` over a given prime `q`
    /// with `q ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two at least 4, or if
    /// `q mod 2n != 1`.
    pub fn with_modulus(n: usize, q: u64) -> Self {
        assert!(n >= 4 && n.is_power_of_two(), "ring degree must be a power of two >= 4");
        assert!(q % (2 * n as u64) == 1, "q must be 1 mod 2n");
        let modulus = PrimeModulus::new(q);
        let psi = primitive_2n_root(&modulus, n);
        let inv_psi = modulus.inv(psi);

        let log_n = n.trailing_zeros();
        let mut psi_rev = vec![0u64; n];
        let mut inv_psi_rev = vec![0u64; n];
        let mut pow_f = 1u64;
        let mut pow_i = 1u64;
        // psi_rev[bitrev(i)] = psi^i.
        let mut powers_f = Vec::with_capacity(n);
        let mut powers_i = Vec::with_capacity(n);
        for _ in 0..n {
            powers_f.push(pow_f);
            powers_i.push(pow_i);
            pow_f = modulus.mul(pow_f, psi);
            pow_i = modulus.mul(pow_i, inv_psi);
        }
        for (i, (&pf, &pi)) in powers_f.iter().zip(powers_i.iter()).enumerate() {
            let r = bit_reverse(i as u64, log_n) as usize;
            psi_rev[r] = pf;
            inv_psi_rev[r] = pi;
        }

        let psi_rev_shoup = psi_rev.iter().map(|&b| shoup_quotient(b, q)).collect();
        let inv_psi_rev_shoup = inv_psi_rev.iter().map(|&b| shoup_quotient(b, q)).collect();
        let n_inv = modulus.inv(n as u64);
        let n_inv_shoup = shoup_quotient(n_inv, q);

        Self {
            n,
            modulus,
            psi_rev,
            psi_rev_shoup,
            inv_psi_rev,
            inv_psi_rev_shoup,
            n_inv,
            n_inv_shoup,
        }
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The prime modulus `Q`.
    pub fn modulus(&self) -> &PrimeModulus {
        &self.modulus
    }

    /// In-place forward negacyclic NTT (coefficient → evaluation
    /// domain). Input coefficients must be reduced modulo `Q`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len()` differs from the table's ring degree.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let q = self.modulus.value();
        let n = self.n;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t /= 2;
            for i in 0..m {
                let w = self.psi_rev[m + i];
                let w_sh = self.psi_rev_shoup[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = mul_shoup(a[j + t], w, w_sh, q);
                    let s = u + v;
                    a[j] = if s >= q { s - q } else { s };
                    a[j + t] = if u >= v { u - v } else { u + q - v };
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (evaluation → coefficient
    /// domain), including the `N^{-1}` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `a.len()` differs from the table's ring degree.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let q = self.modulus.value();
        let n = self.n;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let w = self.inv_psi_rev[h + i];
                let w_sh = self.inv_psi_rev_shoup[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    let s = u + v;
                    a[j] = if s >= q { s - q } else { s };
                    let d = if u >= v { u - v } else { u + q - v };
                    a[j + t] = mul_shoup(d, w, w_sh, q);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_shoup(*x, self.n_inv, self.n_inv_shoup, q);
        }
    }

    /// Precomputes Shoup quotients for a *fixed* NTT-domain vector so
    /// that later multiply-accumulates avoid `%` reductions (used for
    /// the hint polynomials, which are reused across every token).
    pub fn prepare_shoup(&self, values: &[u64]) -> ShoupPoly {
        assert_eq!(values.len(), self.n, "length mismatch");
        let q = self.modulus.value();
        debug_assert!(values.iter().all(|&v| v < q));
        ShoupPoly {
            values: values.to_vec(),
            quotients: values.iter().map(|&v| shoup_quotient(v, q)).collect(),
        }
    }

    /// Pointwise multiply-accumulate `out[i] += h[i] * z[i] mod Q`
    /// with a Shoup-precomputed fixed operand `h`.
    ///
    /// # Panics
    ///
    /// Panics on any length mismatch.
    pub fn mul_acc_shoup(&self, h: &ShoupPoly, z: &[u64], out: &mut [u64]) {
        assert_eq!(h.values.len(), self.n);
        assert_eq!(z.len(), self.n);
        assert_eq!(out.len(), self.n);
        let q = self.modulus.value();
        for i in 0..self.n {
            let p = mul_shoup(z[i], h.values[i], h.quotients[i], q);
            let s = out[i] + p;
            out[i] = if s >= q { s - q } else { s };
        }
    }

    /// Pointwise product `out[i] += a[i] * b[i] mod Q` of two
    /// NTT-domain vectors, accumulating into `out`.
    ///
    /// # Panics
    ///
    /// Panics on any length mismatch.
    pub fn mul_acc(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        assert_eq!(out.len(), self.n);
        let q = self.modulus.value();
        for ((&x, &y), o) in a.iter().zip(b.iter()).zip(out.iter_mut()) {
            let p = ((x as u128 * y as u128) % q as u128) as u64;
            let s = *o + p;
            *o = if s >= q { s - q } else { s };
        }
    }

    /// Pointwise product `out[i] = a[i] * b[i] mod Q`.
    ///
    /// # Panics
    ///
    /// Panics on any length mismatch.
    pub fn mul(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        assert_eq!(out.len(), self.n);
        let q = self.modulus.value();
        for ((&x, &y), o) in a.iter().zip(b.iter()).zip(out.iter_mut()) {
            *o = ((x as u128 * y as u128) % q as u128) as u64;
        }
    }
}

/// A fixed NTT-domain vector with precomputed Shoup quotients for fast
/// repeated multiplication (see [`NttTable::prepare_shoup`]).
#[derive(Debug, Clone)]
pub struct ShoupPoly {
    values: Vec<u64>,
    quotients: Vec<u64>,
}

impl ShoupPoly {
    /// The underlying NTT-domain values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// Reverses the low `bits` bits of `x`.
#[inline]
pub fn bit_reverse(x: u64, bits: u32) -> u64 {
    x.reverse_bits() >> (64 - bits)
}

/// Finds a primitive `2n`-th root of unity modulo `Q`.
///
/// Searches generator candidates and checks `ψ^n = -1`.
fn primitive_2n_root(modulus: &PrimeModulus, n: usize) -> u64 {
    let q = modulus.value();
    let order = 2 * n as u64;
    let cofactor = (q - 1) / order;
    for g in 2..u64::MAX {
        let psi = modulus.pow(g, cofactor);
        if modulus.pow(psi, n as u64) == q - 1 {
            return psi;
        }
    }
    unreachable!("no primitive root found (q-1 has known factor 2n)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use rand::Rng;

    /// Schoolbook negacyclic product for reference.
    fn negacyclic_mul_ref(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0i128; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let prod = (ai as i128) * (bj as i128) % q as i128;
                let k = i + j;
                if k < n {
                    out[k] = (out[k] + prod) % q as i128;
                } else {
                    out[k - n] = (out[k - n] - prod).rem_euclid(q as i128);
                }
            }
        }
        out.into_iter().map(|x| x.rem_euclid(q as i128) as u64).collect()
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let table = NttTable::new(64, 40);
        let mut rng = seeded_rng(7);
        let q = table.modulus().value();
        let original: Vec<u64> = (0..64).map(|_| rng.gen_range(0..q)).collect();
        let mut a = original.clone();
        table.forward(&mut a);
        assert_ne!(a, original, "transform should permute values");
        table.inverse(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn ntt_mul_matches_schoolbook() {
        let table = NttTable::new(32, 30);
        let q = table.modulus().value();
        let mut rng = seeded_rng(13);
        for _ in 0..10 {
            let a: Vec<u64> = (0..32).map(|_| rng.gen_range(0..q)).collect();
            let b: Vec<u64> = (0..32).map(|_| rng.gen_range(0..q)).collect();
            let expected = negacyclic_mul_ref(&a, &b, q);

            let mut fa = a.clone();
            let mut fb = b.clone();
            table.forward(&mut fa);
            table.forward(&mut fb);
            let mut fc = vec![0u64; 32];
            table.mul(&fa, &fb, &mut fc);
            table.inverse(&mut fc);
            assert_eq!(fc, expected);
        }
    }

    #[test]
    fn mul_acc_accumulates() {
        let table = NttTable::new(16, 30);
        let q = table.modulus().value();
        let a: Vec<u64> = (0..16).map(|i| (i as u64 * 7 + 3) % q).collect();
        let b: Vec<u64> = (0..16).map(|i| (i as u64 * 11 + 5) % q).collect();
        let mut acc = vec![1u64; 16];
        table.mul_acc(&a, &b, &mut acc);
        for i in 0..16 {
            assert_eq!(acc[i], (1 + a[i] as u128 * b[i] as u128 % q as u128) as u64 % q);
        }
    }

    #[test]
    fn production_size_roundtrip() {
        // The parameters the outer scheme actually uses: N = 2048, 62-bit Q.
        let table = NttTable::new(2048, 62);
        let q = table.modulus().value();
        let mut rng = seeded_rng(99);
        let original: Vec<u64> = (0..2048).map(|_| rng.gen_range(0..q)).collect();
        let mut a = original.clone();
        table.forward(&mut a);
        table.inverse(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn x_times_x_pow_nminus1_is_minus_one() {
        // In Z_Q[x]/(x^n+1): x * x^(n-1) = x^n = -1.
        let n = 16;
        let table = NttTable::new(n, 30);
        let q = table.modulus().value();
        let mut a = vec![0u64; n];
        a[1] = 1;
        let mut b = vec![0u64; n];
        b[n - 1] = 1;
        table.forward(&mut a);
        table.forward(&mut b);
        let mut c = vec![0u64; n];
        table.mul(&a, &b, &mut c);
        table.inverse(&mut c);
        let mut expected = vec![0u64; n];
        expected[0] = q - 1;
        assert_eq!(c, expected);
    }
}
