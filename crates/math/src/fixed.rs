//! Fixed-precision representation of real-valued embeddings in `Z_p`
//! (paper, Appendix B.1).
//!
//! Each real `x ∈ [-1, 1]` is represented as `round(x · 2^b)` with a
//! sign, then mapped into `Z_p` by associating `Z_p` with
//! `{-p/2, …, 0, …, p/2}`. Inner products of `d`-dimensional vectors
//! stay below `p/2` — and therefore never wrap — as long as
//! `p/2 > d · (2^b)^2`, which [`FixedEncoder::max_dimension`] exposes
//! and the crypto parameter selection enforces.

/// Encoder between reals in `[-1, 1]` and fixed-precision residues
/// modulo `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedEncoder {
    /// Precision bits `b`; values are scaled by `2^b`.
    bits: u32,
    /// Plaintext modulus `p`.
    p: u64,
}

impl FixedEncoder {
    /// Creates an encoder with `b` precision bits over modulus `p`.
    ///
    /// # Panics
    ///
    /// Panics if the scaled range does not fit in `p`
    /// (`2^(b+1) >= p`), or `b == 0`, or `p < 4`.
    pub fn new(bits: u32, p: u64) -> Self {
        assert!(bits > 0, "need at least one precision bit");
        assert!(p >= 4, "modulus too small");
        assert!(1u64 << (bits + 1) < p, "scaled values must fit in Z_p");
        Self { bits, p }
    }

    /// Precision bits `b`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Plaintext modulus `p`.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The scale factor `2^b`.
    pub fn scale(&self) -> i64 {
        1i64 << self.bits
    }

    /// Largest vector dimension `d` whose inner products are guaranteed
    /// not to wrap modulo `p` for **arbitrary** vectors in `[-1,1]^d`:
    /// `d · (2^b)^2 < p/2`.
    pub fn max_dimension(&self) -> usize {
        let sq = (self.scale() as u128) * (self.scale() as u128);
        ((self.p as u128 / 2 - 1) / sq) as usize
    }

    /// Whether inner products of **L2-normalized** vectors of dimension
    /// `d` are guaranteed not to wrap modulo `p`.
    ///
    /// For unit vectors the product is at most `2^{2b}` plus rounding
    /// cross-terms: `2^{2b} + 2^b·√d + d/4`. This is the bound that
    /// lets the paper use `p = 2^15` with `d = 384` for image search
    /// (Appendix C calls these "normalized embeddings").
    pub fn supports_normalized(&self, d: usize) -> bool {
        let s = self.scale() as f64;
        let bound = s * s + s * (d as f64).sqrt() + d as f64 / 4.0;
        bound < (self.p / 2) as f64
    }

    /// Encodes a real as a signed fixed-precision integer, clipping to
    /// `[-1, 1]` (the paper clips out-of-range embedding values, §B.1).
    pub fn encode_signed(&self, x: f32) -> i64 {
        let clipped = x.clamp(-1.0, 1.0);
        (clipped as f64 * self.scale() as f64).round() as i64
    }

    /// Encodes a real as a residue in `[0, p)`.
    pub fn encode(&self, x: f32) -> u64 {
        crate::zq::reduce_signed(self.encode_signed(x), self.p)
    }

    /// Encodes a whole vector into `Z_p` residues.
    pub fn encode_vec(&self, xs: &[f32]) -> Vec<u64> {
        xs.iter().map(|&x| self.encode(x)).collect()
    }

    /// Decodes a residue back to the signed representative.
    pub fn decode_signed(&self, r: u64) -> i64 {
        crate::zq::center(r % self.p, self.p)
    }

    /// Decodes a residue holding an **inner product** of two encoded
    /// vectors back to an approximate real value (the scale is applied
    /// twice by the product).
    pub fn decode_product(&self, r: u64) -> f64 {
        let s = self.scale() as f64;
        self.decode_signed(r) as f64 / (s * s)
    }

    /// Exact signed inner product of two encoded vectors, as the
    /// server would compute it modulo `p`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn inner_product_mod_p(&self, a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        let p = self.p as u128;
        let mut acc: u128 = 0;
        for (&x, &y) in a.iter().zip(b.iter()) {
            acc = (acc + (x as u128 % p) * (y as u128 % p)) % p;
        }
        acc as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_error_bound() {
        let enc = FixedEncoder::new(4, 1 << 17);
        for i in -100..=100 {
            let x = i as f32 / 100.0;
            let r = enc.encode(x);
            let back = enc.decode_signed(r) as f64 / enc.scale() as f64;
            assert!(
                (back - x as f64).abs() <= 0.5 / enc.scale() as f64 + 1e-9,
                "x={x}, back={back}"
            );
        }
    }

    #[test]
    fn out_of_range_values_are_clipped() {
        let enc = FixedEncoder::new(4, 1 << 17);
        assert_eq!(enc.encode(5.0), enc.encode(1.0));
        assert_eq!(enc.encode(-5.0), enc.encode(-1.0));
    }

    #[test]
    fn paper_text_parameters_support_dimension_192() {
        // Text search: p = 2^17, 4-bit signed embeddings, d = 192
        // (Appendix C: "avoids overflow ... with embeddings of
        // dimension d = 192 consisting of 4-bit signed integers").
        let enc = FixedEncoder::new(3, 1 << 17);
        assert!(enc.max_dimension() >= 192, "got {}", enc.max_dimension());
    }

    #[test]
    fn paper_image_parameters_support_dimension_384() {
        // Image search: p = 2^15, d = 384, 4-bit signed values. The
        // worst-case bound does NOT cover d = 384; the paper relies on
        // the embeddings being L2-normalized.
        let enc = FixedEncoder::new(3, 1 << 15);
        assert!(enc.max_dimension() < 384);
        assert!(enc.supports_normalized(384));
    }

    #[test]
    fn inner_product_mod_p_matches_float_product() {
        let enc = FixedEncoder::new(6, 1 << 24);
        let a = [0.5f32, -0.25, 1.0, 0.0];
        let b = [0.5f32, 0.25, -1.0, 0.75];
        let ea = enc.encode_vec(&a);
        let eb = enc.encode_vec(&b);
        let got = enc.decode_product(enc.inner_product_mod_p(&ea, &eb));
        let want: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| x as f64 * y as f64).sum();
        assert!((got - want).abs() < 0.05, "got {got}, want {want}");
    }

    #[test]
    fn max_dimension_is_tight() {
        let enc = FixedEncoder::new(3, 1 << 17);
        let d = enc.max_dimension();
        // d * (2^3)^2 < p/2 <= (d+1) * (2^3)^2.
        assert!((d as u64) * 64 < (1 << 16));
        assert!((d as u64 + 1) * 64 >= (1 << 16));
    }

    #[test]
    #[should_panic(expected = "fit in Z_p")]
    fn oversized_precision_rejected() {
        let _ = FixedEncoder::new(20, 1 << 17);
    }
}
