//! Runtime-dispatched SIMD kernels behind the matrix-vector hot loops.
//!
//! The server-side scan multiplies a narrow (`u32` or sign-extended
//! nibble) matrix against wide [`Word`] vectors with wrapping
//! arithmetic. Because wrapping addition modulo `2^k` is associative
//! and commutative, *any* regrouping of the multiply-accumulate chain
//! — four-way scalar unrolls, 256-bit lanes, 512-bit lanes — produces
//! bit-identical results, so vectorization is purely a scheduling
//! decision. This module picks the widest instruction set the CPU
//! offers at runtime and falls back to the portable scalar unroll
//! everywhere else.
//!
//! # Dispatch tiers
//!
//! | Tier                     | dot (u32·u64) | dot (u32·u32) | axpy |
//! |--------------------------|---------------|---------------|------|
//! | [`KernelTier::Avx512`]   | 8 lanes       | 16 lanes      | 8/16 |
//! | [`KernelTier::Avx2`]     | 4 lanes       | 8 lanes       | 4/8  |
//! | [`KernelTier::Scalar`]   | 4-way unroll  | 4-way unroll  | 1    |
//!
//! The tier is detected once (see [`tier`]) with
//! `is_x86_feature_detected!` and cached for the process lifetime;
//! setting `TIPTOE_FORCE_SCALAR=1` pins the scalar tier so CI can
//! exercise both sides of the dispatch boundary on one machine.
//! Non-x86 targets (e.g. aarch64) currently always take the scalar
//! tier; the dispatch seam is the place to slot NEON kernels in.
//!
//! # Safety model
//!
//! All `unsafe` in this crate lives in this module, under
//! `#![deny(unsafe_op_in_unsafe_fn)]`. Each vector kernel is an
//! `unsafe fn` whose single contract is "the CPU supports the
//! annotated target features"; the only call sites are the dispatch
//! functions below, which establish that contract via the cached
//! feature probe. Inside the kernels, the remaining unsafe operations
//! are unaligned vector loads/stores whose bounds are justified
//! inline at each block.

use std::sync::OnceLock;

use crate::zq::Word;

/// The instruction-set tier the dispatched kernels run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelTier {
    /// Portable Rust (the four-way-unrolled MAC loop).
    Scalar,
    /// 256-bit AVX2 lanes (x86-64).
    Avx2,
    /// 512-bit AVX-512F + AVX-512DQ lanes (x86-64; DQ supplies the
    /// native 64-bit vector multiply).
    Avx512,
}

impl KernelTier {
    /// Stable lowercase name (recorded in bench JSON and metrics).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }

    /// Numeric code for `u64`-valued observability attrs/gauges
    /// (0 = scalar, 1 = avx2, 2 = avx512).
    pub fn code(self) -> u64 {
        match self {
            KernelTier::Scalar => 0,
            KernelTier::Avx2 => 1,
            KernelTier::Avx512 => 2,
        }
    }
}

fn detect() -> KernelTier {
    let forced = std::env::var("TIPTOE_FORCE_SCALAR")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if forced {
        return KernelTier::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq") {
            return KernelTier::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return KernelTier::Avx2;
        }
    }
    KernelTier::Scalar
}

/// The process-wide kernel tier: the widest instruction set the CPU
/// supports, probed once and cached (so `TIPTOE_FORCE_SCALAR` is read
/// a single time, before the first kernel runs).
#[inline]
pub fn tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(detect)
}

/// [`tier`]'s stable name, for bench reports.
pub fn tier_name() -> &'static str {
    tier().name()
}

// ---------------------------------------------------------------------
// Scalar reference kernels (generic over `Word`; the fallback tier and
// the oracle the vector tiers are property-tested against).
// ---------------------------------------------------------------------

/// Four-way-unrolled scalar inner product of a narrow `u32` row with a
/// wide vector — the portable tier of [`Word::dot_narrow`], and the
/// reference all vector kernels must match bit-for-bit.
#[inline]
pub fn dot_narrow_scalar<W: Word>(row: &[u32], v: &[W]) -> W {
    debug_assert_eq!(row.len(), v.len());
    let mut acc0 = W::ZERO;
    let mut acc1 = W::ZERO;
    let mut acc2 = W::ZERO;
    let mut acc3 = W::ZERO;
    let mut row4 = row.chunks_exact(4);
    let mut v4 = v.chunks_exact(4);
    for (r, x) in (&mut row4).zip(&mut v4) {
        acc0 = acc0.wadd(W::from_u64(r[0] as u64).wmul(x[0]));
        acc1 = acc1.wadd(W::from_u64(r[1] as u64).wmul(x[1]));
        acc2 = acc2.wadd(W::from_u64(r[2] as u64).wmul(x[2]));
        acc3 = acc3.wadd(W::from_u64(r[3] as u64).wmul(x[3]));
    }
    for (&r, &x) in row4.remainder().iter().zip(v4.remainder().iter()) {
        acc0 = acc0.wadd(W::from_u64(r as u64).wmul(x));
    }
    acc0.wadd(acc1).wadd(acc2).wadd(acc3)
}

/// Scalar tier of [`Word::dot_wide`]: inner product of two wide
/// vectors (hint-times-secret during decryption).
#[inline]
pub fn dot_wide_scalar<W: Word>(a: &[W], b: &[W]) -> W {
    debug_assert_eq!(a.len(), b.len());
    let mut acc0 = W::ZERO;
    let mut acc1 = W::ZERO;
    let mut a2 = a.chunks_exact(2);
    let mut b2 = b.chunks_exact(2);
    for (x, y) in (&mut a2).zip(&mut b2) {
        acc0 = acc0.wadd(x[0].wmul(y[0]));
        acc1 = acc1.wadd(x[1].wmul(y[1]));
    }
    for (&x, &y) in a2.remainder().iter().zip(b2.remainder().iter()) {
        acc0 = acc0.wadd(x.wmul(y));
    }
    acc0.wadd(acc1)
}

/// Scalar tier of [`Word::axpy`]: `acc[i] += w·x[i]` (the hint
/// preprocessing inner loop; `w` may be a sign-extended full-width
/// multiplier from the packed database path).
#[inline]
pub fn axpy_scalar<W: Word>(acc: &mut [W], w: W, x: &[W]) {
    debug_assert_eq!(acc.len(), x.len());
    for (o, &a) in acc.iter_mut().zip(x.iter()) {
        *o = o.wadd(w.wmul(a));
    }
}

// ---------------------------------------------------------------------
// Dispatch functions (one per concrete width; the Word impls in `zq`
// route here).
// ---------------------------------------------------------------------

/// Dispatched inner product of a `u32` row with a `u64` vector.
#[inline]
pub fn dot_u32_u64(row: &[u32], v: &[u64]) -> u64 {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier()` returned this variant only after
        // `is_x86_feature_detected!` confirmed the required features.
        KernelTier::Avx512 => unsafe { x86::dot_u32_u64_avx512(row, v) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX2 was detected at runtime.
        KernelTier::Avx2 => unsafe { x86::dot_u32_u64_avx2(row, v) },
        _ => dot_narrow_scalar(row, v),
    }
}

/// Dispatched inner product of a `u32` row with a `u32` vector.
#[inline]
pub fn dot_u32_u32(row: &[u32], v: &[u32]) -> u32 {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier()` confirmed avx512f+avx512dq at runtime.
        KernelTier::Avx512 => unsafe { x86::dot_u32_u32_avx512(row, v) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier()` confirmed avx2 at runtime.
        KernelTier::Avx2 => unsafe { x86::dot_u32_u32_avx2(row, v) },
        _ => dot_narrow_scalar(row, v),
    }
}

/// Dispatched inner product of two `u64` vectors.
#[inline]
pub fn dot_wide_u64(a: &[u64], b: &[u64]) -> u64 {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier()` confirmed avx512f+avx512dq at runtime.
        KernelTier::Avx512 => unsafe { x86::dot_wide_u64_avx512(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier()` confirmed avx2 at runtime.
        KernelTier::Avx2 => unsafe { x86::dot_wide_u64_avx2(a, b) },
        _ => dot_wide_scalar(a, b),
    }
}

/// Dispatched `acc[i] += w·x[i]` over `u64` words.
#[inline]
pub fn axpy_u64(acc: &mut [u64], w: u64, x: &[u64]) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier()` confirmed avx512f+avx512dq at runtime.
        KernelTier::Avx512 => unsafe { x86::axpy_u64_avx512(acc, w, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier()` confirmed avx2 at runtime.
        KernelTier::Avx2 => unsafe { x86::axpy_u64_avx2(acc, w, x) },
        _ => axpy_scalar(acc, w, x),
    }
}

/// Dispatched `acc[i] += w·x[i]` over `u32` words.
#[inline]
pub fn axpy_u32(acc: &mut [u32], w: u32, x: &[u32]) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier()` confirmed avx512f+avx512dq at runtime.
        KernelTier::Avx512 => unsafe { x86::axpy_u32_avx512(acc, w, x) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier()` confirmed avx2 at runtime.
        KernelTier::Avx2 => unsafe { x86::axpy_u32_avx2(acc, w, x) },
        _ => axpy_scalar(acc, w, x),
    }
}

// ---------------------------------------------------------------------
// x86-64 vector kernels.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// Low 64 bits of `r·x` per lane when every lane of `r` is `< 2^32`
    /// (a zero-extended `u32` database entry):
    /// `r·x mod 2^64 = r·lo32(x) + ((r·hi32(x)) << 32)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mul64_by_u32(r: __m256i, x: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(r, x);
        let hi = _mm256_mul_epu32(r, _mm256_srli_epi64::<32>(x));
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(hi))
    }

    /// Low 64 bits of `a·b` per lane for arbitrary 64-bit lanes:
    /// `lo64(a·b) = a_lo·b_lo + ((a_lo·b_hi + a_hi·b_lo) << 32)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mullo64(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let c1 = _mm256_mul_epu32(a, _mm256_srli_epi64::<32>(b));
        let c2 = _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), b);
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(_mm256_add_epi64(c1, c2)))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn hsum_epi64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is a valid, writable 32-byte buffer; storeu
        // has no alignment requirement.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), v) };
        lanes.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn hsum_epi32(v: __m256i) -> u32 {
        let mut lanes = [0u32; 8];
        // SAFETY: `lanes` is a valid, writable 32-byte buffer; storeu
        // has no alignment requirement.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), v) };
        lanes.iter().fold(0u32, |a, &b| a.wrapping_add(b))
    }

    /// # Safety
    ///
    /// The CPU must support AVX2 (established by the dispatcher's
    /// cached `is_x86_feature_detected!("avx2")` probe).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_u32_u64_avx2(row: &[u32], v: &[u64]) -> u64 {
        debug_assert_eq!(row.len(), v.len());
        let n = row.len().min(v.len());
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` bounds the two 16-byte u32 loads at
            // offsets `i` and `i + 4` and the two 32-byte u64 loads at
            // the same offsets inside their slices; loadu tolerates
            // unaligned addresses.
            let (r0, r1, x0, x1) = unsafe {
                (
                    _mm256_cvtepu32_epi64(_mm_loadu_si128(row.as_ptr().add(i).cast())),
                    _mm256_cvtepu32_epi64(_mm_loadu_si128(row.as_ptr().add(i + 4).cast())),
                    _mm256_loadu_si256(v.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(v.as_ptr().add(i + 4).cast()),
                )
            };
            acc0 = _mm256_add_epi64(acc0, mul64_by_u32(r0, x0));
            acc1 = _mm256_add_epi64(acc1, mul64_by_u32(r1, x1));
            i += 8;
        }
        let mut acc = hsum_epi64(_mm256_add_epi64(acc0, acc1));
        while i < n {
            acc = acc.wrapping_add((row[i] as u64).wrapping_mul(v[i]));
            i += 1;
        }
        acc
    }

    /// 512-bit low-64 multiply for lanes with `r < 2^32`: on AVX-512DQ
    /// hardware with IFMA-class multipliers (Ice Lake and later) the
    /// native `vpmullq` beats the two-`vpmuludq` decomposition, so the
    /// narrow case just uses the full multiply.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq")]
    fn mul64_by_u32_512(r: __m512i, x: __m512i) -> __m512i {
        _mm512_mullo_epi64(r, x)
    }

    /// # Safety
    ///
    /// The CPU must support AVX-512F and AVX-512DQ (established by the
    /// dispatcher's cached feature probe).
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn dot_u32_u64_avx512(row: &[u32], v: &[u64]) -> u64 {
        debug_assert_eq!(row.len(), v.len());
        let n = row.len().min(v.len());
        let mut acc0 = _mm512_setzero_si512();
        let mut acc1 = _mm512_setzero_si512();
        let mut acc2 = _mm512_setzero_si512();
        let mut acc3 = _mm512_setzero_si512();
        let mut i = 0;
        while i + 32 <= n {
            // SAFETY: `i + 32 <= n` bounds the four 32-byte u32 loads
            // and the four 64-byte u64 loads at offsets `i`, `i + 8`,
            // `i + 16`, `i + 24`; the epi32/epi64 loadu intrinsics are
            // unaligned loads.
            unsafe {
                let r0 = _mm512_cvtepu32_epi64(_mm256_loadu_si256(row.as_ptr().add(i).cast()));
                let r1 = _mm512_cvtepu32_epi64(_mm256_loadu_si256(row.as_ptr().add(i + 8).cast()));
                let r2 = _mm512_cvtepu32_epi64(_mm256_loadu_si256(row.as_ptr().add(i + 16).cast()));
                let r3 = _mm512_cvtepu32_epi64(_mm256_loadu_si256(row.as_ptr().add(i + 24).cast()));
                let x0 = _mm512_loadu_epi64(v.as_ptr().add(i).cast());
                let x1 = _mm512_loadu_epi64(v.as_ptr().add(i + 8).cast());
                let x2 = _mm512_loadu_epi64(v.as_ptr().add(i + 16).cast());
                let x3 = _mm512_loadu_epi64(v.as_ptr().add(i + 24).cast());
                acc0 = _mm512_add_epi64(acc0, mul64_by_u32_512(r0, x0));
                acc1 = _mm512_add_epi64(acc1, mul64_by_u32_512(r1, x1));
                acc2 = _mm512_add_epi64(acc2, mul64_by_u32_512(r2, x2));
                acc3 = _mm512_add_epi64(acc3, mul64_by_u32_512(r3, x3));
            }
            i += 32;
        }
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` bounds one 32-byte u32 load and one
            // 64-byte u64 load at offset `i`.
            unsafe {
                let r = _mm512_cvtepu32_epi64(_mm256_loadu_si256(row.as_ptr().add(i).cast()));
                let x = _mm512_loadu_epi64(v.as_ptr().add(i).cast());
                acc0 = _mm512_add_epi64(acc0, mul64_by_u32_512(r, x));
            }
            i += 8;
        }
        let mut lanes = [0u64; 8];
        // SAFETY: `lanes` is a valid, writable 64-byte buffer.
        unsafe {
            _mm512_storeu_epi64(
                lanes.as_mut_ptr().cast(),
                _mm512_add_epi64(_mm512_add_epi64(acc0, acc1), _mm512_add_epi64(acc2, acc3)),
            )
        };
        let mut acc = lanes.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        while i < n {
            acc = acc.wrapping_add((row[i] as u64).wrapping_mul(v[i]));
            i += 1;
        }
        acc
    }

    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_u32_u32_avx2(row: &[u32], v: &[u32]) -> u32 {
        debug_assert_eq!(row.len(), v.len());
        let n = row.len().min(v.len());
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: `i + 16 <= n` bounds all four 32-byte loads at
            // offsets `i` and `i + 8` inside both slices.
            let (r0, r1, x0, x1) = unsafe {
                (
                    _mm256_loadu_si256(row.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(row.as_ptr().add(i + 8).cast()),
                    _mm256_loadu_si256(v.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(v.as_ptr().add(i + 8).cast()),
                )
            };
            acc0 = _mm256_add_epi32(acc0, _mm256_mullo_epi32(r0, x0));
            acc1 = _mm256_add_epi32(acc1, _mm256_mullo_epi32(r1, x1));
            i += 16;
        }
        let mut acc = hsum_epi32(_mm256_add_epi32(acc0, acc1));
        while i < n {
            acc = acc.wrapping_add(row[i].wrapping_mul(v[i]));
            i += 1;
        }
        acc
    }

    /// # Safety
    ///
    /// The CPU must support AVX-512F and AVX-512DQ.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn dot_u32_u32_avx512(row: &[u32], v: &[u32]) -> u32 {
        debug_assert_eq!(row.len(), v.len());
        let n = row.len().min(v.len());
        let mut acc0 = _mm512_setzero_si512();
        let mut acc1 = _mm512_setzero_si512();
        let mut i = 0;
        while i + 32 <= n {
            // SAFETY: `i + 32 <= n` bounds all four 64-byte loads at
            // offsets `i` and `i + 16` inside both slices.
            let (r0, r1, x0, x1) = unsafe {
                (
                    _mm512_loadu_epi32(row.as_ptr().add(i).cast()),
                    _mm512_loadu_epi32(row.as_ptr().add(i + 16).cast()),
                    _mm512_loadu_epi32(v.as_ptr().add(i).cast()),
                    _mm512_loadu_epi32(v.as_ptr().add(i + 16).cast()),
                )
            };
            acc0 = _mm512_add_epi32(acc0, _mm512_mullo_epi32(r0, x0));
            acc1 = _mm512_add_epi32(acc1, _mm512_mullo_epi32(r1, x1));
            i += 32;
        }
        let mut lanes = [0u32; 16];
        // SAFETY: `lanes` is a valid, writable 64-byte buffer.
        unsafe {
            _mm512_storeu_epi32(
                lanes.as_mut_ptr().cast(),
                _mm512_add_epi32(acc0, acc1),
            )
        };
        let mut acc = lanes.iter().fold(0u32, |a, &b| a.wrapping_add(b));
        while i < n {
            acc = acc.wrapping_add(row[i].wrapping_mul(v[i]));
            i += 1;
        }
        acc
    }

    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_wide_u64_avx2(a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len().min(b.len());
        let mut vacc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds both 32-byte loads.
            let (x, y) = unsafe {
                (
                    _mm256_loadu_si256(a.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(b.as_ptr().add(i).cast()),
                )
            };
            vacc = _mm256_add_epi64(vacc, mullo64(x, y));
            i += 4;
        }
        let mut acc = hsum_epi64(vacc);
        while i < n {
            acc = acc.wrapping_add(a[i].wrapping_mul(b[i]));
            i += 1;
        }
        acc
    }

    /// # Safety
    ///
    /// The CPU must support AVX-512F and AVX-512DQ.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn dot_wide_u64_avx512(a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len().min(b.len());
        let mut vacc = _mm512_setzero_si512();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` bounds both 64-byte loads.
            let (x, y) = unsafe {
                (
                    _mm512_loadu_epi64(a.as_ptr().add(i).cast()),
                    _mm512_loadu_epi64(b.as_ptr().add(i).cast()),
                )
            };
            vacc = _mm512_add_epi64(vacc, _mm512_mullo_epi64(x, y));
            i += 8;
        }
        let mut lanes = [0u64; 8];
        // SAFETY: `lanes` is a valid, writable 64-byte buffer.
        unsafe { _mm512_storeu_epi64(lanes.as_mut_ptr().cast(), vacc) };
        let mut acc = lanes.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        while i < n {
            acc = acc.wrapping_add(a[i].wrapping_mul(b[i]));
            i += 1;
        }
        acc
    }

    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_u64_avx2(acc: &mut [u64], w: u64, x: &[u64]) {
        debug_assert_eq!(acc.len(), x.len());
        let n = acc.len().min(x.len());
        let wv = _mm256_set1_epi64x(w as i64);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds the 32-byte load from `x`,
            // and the load/store pair on `acc`, inside their slices.
            unsafe {
                let xv = _mm256_loadu_si256(x.as_ptr().add(i).cast());
                let av = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
                _mm256_storeu_si256(
                    acc.as_mut_ptr().add(i).cast(),
                    _mm256_add_epi64(av, mullo64(wv, xv)),
                );
            }
            i += 4;
        }
        while i < n {
            acc[i] = acc[i].wrapping_add(w.wrapping_mul(x[i]));
            i += 1;
        }
    }

    /// # Safety
    ///
    /// The CPU must support AVX-512F and AVX-512DQ.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn axpy_u64_avx512(acc: &mut [u64], w: u64, x: &[u64]) {
        debug_assert_eq!(acc.len(), x.len());
        let n = acc.len().min(x.len());
        let wv = _mm512_set1_epi64(w as i64);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` bounds the 64-byte load from `x`,
            // and the load/store pair on `acc`, inside their slices.
            unsafe {
                let xv = _mm512_loadu_epi64(x.as_ptr().add(i).cast());
                let av = _mm512_loadu_epi64(acc.as_ptr().add(i).cast());
                _mm512_storeu_epi64(
                    acc.as_mut_ptr().add(i).cast(),
                    _mm512_add_epi64(av, _mm512_mullo_epi64(wv, xv)),
                );
            }
            i += 8;
        }
        while i < n {
            acc[i] = acc[i].wrapping_add(w.wrapping_mul(x[i]));
            i += 1;
        }
    }

    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_u32_avx2(acc: &mut [u32], w: u32, x: &[u32]) {
        debug_assert_eq!(acc.len(), x.len());
        let n = acc.len().min(x.len());
        let wv = _mm256_set1_epi32(w as i32);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` bounds the 32-byte load from `x`,
            // and the load/store pair on `acc`, inside their slices.
            unsafe {
                let xv = _mm256_loadu_si256(x.as_ptr().add(i).cast());
                let av = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
                _mm256_storeu_si256(
                    acc.as_mut_ptr().add(i).cast(),
                    _mm256_add_epi32(av, _mm256_mullo_epi32(wv, xv)),
                );
            }
            i += 8;
        }
        while i < n {
            acc[i] = acc[i].wrapping_add(w.wrapping_mul(x[i]));
            i += 1;
        }
    }

    /// # Safety
    ///
    /// The CPU must support AVX-512F and AVX-512DQ.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn axpy_u32_avx512(acc: &mut [u32], w: u32, x: &[u32]) {
        debug_assert_eq!(acc.len(), x.len());
        let n = acc.len().min(x.len());
        let wv = _mm512_set1_epi32(w as i32);
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: `i + 16 <= n` bounds the 64-byte load from `x`,
            // and the load/store pair on `acc`, inside their slices.
            unsafe {
                let xv = _mm512_loadu_epi32(x.as_ptr().add(i).cast());
                let av = _mm512_loadu_epi32(acc.as_ptr().add(i).cast());
                _mm512_storeu_epi32(
                    acc.as_mut_ptr().add(i).cast(),
                    _mm512_add_epi32(av, _mm512_mullo_epi32(wv, xv)),
                );
            }
            i += 16;
        }
        while i < n {
            acc[i] = acc[i].wrapping_add(w.wrapping_mul(x[i]));
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn narrow_case(len: usize, seed: u64) -> (Vec<u32>, Vec<u64>) {
        let row: Vec<u32> =
            (0..len).map(|i| (i as u32).wrapping_mul(2654435761).wrapping_add(seed as u32)).collect();
        let v: Vec<u64> = (0..len)
            .map(|i| (i as u64 ^ seed).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed))
            .collect();
        (row, v)
    }

    /// Lengths that exercise every unroll boundary: empty, sub-lane,
    /// exact multiples of each tier's stride, and ragged tails.
    const LENS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 257];

    #[test]
    fn dispatched_dot_narrow_matches_scalar_u64() {
        for &len in LENS {
            let (row, v) = narrow_case(len, 7);
            assert_eq!(dot_u32_u64(&row, &v), dot_narrow_scalar(&row, &v), "len={len}");
        }
    }

    #[test]
    fn dispatched_dot_narrow_matches_scalar_u32() {
        for &len in LENS {
            let (row, v) = narrow_case(len, 11);
            let v32: Vec<u32> = v.iter().map(|&x| x as u32).collect();
            assert_eq!(dot_u32_u32(&row, &v32), dot_narrow_scalar(&row, &v32), "len={len}");
        }
    }

    #[test]
    fn dispatched_dot_wide_matches_scalar() {
        for &len in LENS {
            let (_, a) = narrow_case(len, 13);
            let (_, b) = narrow_case(len, 17);
            assert_eq!(dot_wide_u64(&a, &b), dot_wide_scalar(&a, &b), "len={len}");
        }
    }

    #[test]
    fn dispatched_axpy_matches_scalar() {
        for &len in LENS {
            let (_, x) = narrow_case(len, 19);
            for w in [0u64, 1, 5, u64::MAX, (-3i64) as u64, 1 << 40] {
                let mut got: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(99)).collect();
                let mut want = got.clone();
                axpy_u64(&mut got, w, &x);
                axpy_scalar(&mut want, w, &x);
                assert_eq!(got, want, "len={len}, w={w}");
            }
            let x32: Vec<u32> = x.iter().map(|&v| v as u32).collect();
            let mut got: Vec<u32> = (0..len as u32).map(|i| i.wrapping_mul(7)).collect();
            let mut want = got.clone();
            axpy_u32(&mut got, 0xdead_beef, &x32);
            axpy_scalar(&mut want, 0xdead_beef, &x32);
            assert_eq!(got, want, "len={len} (u32)");
        }
    }

    /// Exercises every vector tier the host actually supports directly
    /// (not just the one `tier()` picked), so a single machine tests
    /// each implementation against the scalar oracle.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn every_supported_tier_is_bit_identical_to_scalar() {
        let avx2 = is_x86_feature_detected!("avx2");
        let avx512 = is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq");
        for &len in LENS {
            let (row, v) = narrow_case(len, 23);
            let v32: Vec<u32> = v.iter().map(|&x| x as u32).collect();
            let w = 0xfeed_f00d_dead_beefu64;
            if avx2 {
                // SAFETY: avx2 was detected above.
                unsafe {
                    assert_eq!(x86::dot_u32_u64_avx2(&row, &v), dot_narrow_scalar(&row, &v));
                    assert_eq!(x86::dot_u32_u32_avx2(&row, &v32), dot_narrow_scalar(&row, &v32));
                    assert_eq!(x86::dot_wide_u64_avx2(&v, &v), dot_wide_scalar(&v, &v));
                    let mut got = v.clone();
                    let mut want = v.clone();
                    x86::axpy_u64_avx2(&mut got, w, &v);
                    axpy_scalar(&mut want, w, &v);
                    assert_eq!(got, want);
                }
            }
            if avx512 {
                // SAFETY: avx512f+avx512dq were detected above.
                unsafe {
                    assert_eq!(x86::dot_u32_u64_avx512(&row, &v), dot_narrow_scalar(&row, &v));
                    assert_eq!(x86::dot_u32_u32_avx512(&row, &v32), dot_narrow_scalar(&row, &v32));
                    assert_eq!(x86::dot_wide_u64_avx512(&v, &v), dot_wide_scalar(&v, &v));
                    let mut got = v.clone();
                    let mut want = v.clone();
                    x86::axpy_u64_avx512(&mut got, w, &v);
                    axpy_scalar(&mut want, w, &v);
                    assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn tier_is_cached_and_named() {
        let t = tier();
        assert_eq!(t, tier(), "tier must be stable across calls");
        assert!(["scalar", "avx2", "avx512"].contains(&t.name()));
        assert!(t.code() <= 2);
        if std::env::var("TIPTOE_FORCE_SCALAR").map(|v| v == "1").unwrap_or(false) {
            assert_eq!(t, KernelTier::Scalar, "force-scalar knob must pin the scalar tier");
        }
    }
}
