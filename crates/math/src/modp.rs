//! Arithmetic over `Z_Q` for odd prime moduli.
//!
//! The ring-LWE outer encryption scheme (paper §6.2, Appendix A) works
//! over an NTT-friendly prime `Q`. We keep `Q < 2^63` so products fit
//! in `u128` without overflow; all reductions here are plain `%`-based
//! (the NTT hot loop in [`crate::ntt`] uses precomputed Shoup constants
//! instead, so this module only needs to be correct, not fast).

/// An odd prime modulus `Q < 2^63` with the basic field operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeModulus {
    q: u64,
}

impl PrimeModulus {
    /// Wraps a prime modulus.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not an odd prime below `2^63`. Primality is
    /// checked with a deterministic Miller-Rabin test.
    pub fn new(q: u64) -> Self {
        assert!((3..(1u64 << 63)).contains(&q), "modulus out of range: {q}");
        assert!(q % 2 == 1, "modulus must be odd: {q}");
        assert!(is_prime(q), "modulus must be prime: {q}");
        Self { q }
    }

    /// The modulus value.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.q
    }

    /// Addition in `Z_Q`. Inputs must already be reduced.
    #[inline(always)]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Subtraction in `Z_Q`. Inputs must already be reduced.
    #[inline(always)]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// Negation in `Z_Q`.
    #[inline(always)]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// Multiplication in `Z_Q` via a 128-bit intermediate.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % self.q as u128) as u64
    }

    /// Reduces an arbitrary `u64` into `Z_Q`.
    #[inline(always)]
    pub fn reduce(&self, a: u64) -> u64 {
        a % self.q
    }

    /// Reduces an arbitrary `u128` into `Z_Q`.
    #[inline(always)]
    pub fn reduce_u128(&self, a: u128) -> u64 {
        (a % self.q as u128) as u64
    }

    /// Reduces a signed value into `Z_Q`.
    #[inline(always)]
    pub fn reduce_signed(&self, a: i64) -> u64 {
        (a as i128).rem_euclid(self.q as i128) as u64
    }

    /// Centers `a` into the signed range `(-Q/2, Q/2]`.
    #[inline(always)]
    pub fn center(&self, a: u64) -> i64 {
        debug_assert!(a < self.q);
        if a > self.q / 2 {
            -((self.q - a) as i64)
        } else {
            a as i64
        }
    }

    /// Modular exponentiation `a^e mod Q`.
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse of `a` in `Z_Q` (Fermat).
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no inverse).
    pub fn inv(&self, a: u64) -> u64 {
        assert!(!a.is_multiple_of(self.q), "zero has no inverse");
        self.pow(a, self.q - 2)
    }
}

/// Deterministic Miller-Rabin primality test for `u64`.
///
/// Uses the standard base set that is exact for all 64-bit integers.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    let mul = |a: u64, b: u64| ((a as u128 * b as u128) % n as u128) as u64;
    let pow = |mut a: u64, mut e: u64| {
        let mut acc = 1u64;
        a %= n;
        while e > 0 {
            if e & 1 == 1 {
                acc = mul(acc, a);
            }
            a = mul(a, a);
            e >>= 1;
        }
        acc
    };
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds the largest prime `Q < 2^bits` with `Q ≡ 1 (mod m)`.
///
/// Used to pick NTT-friendly ciphertext moduli (`m = 2N`).
///
/// # Panics
///
/// Panics if no such prime exists below `2^bits` (never happens for the
/// parameter ranges used in this workspace) or if `bits > 63`.
pub fn find_ntt_prime(bits: u32, m: u64) -> u64 {
    assert!((10..=63).contains(&bits), "bits out of range: {bits}");
    let top = 1u64 << bits;
    // Largest candidate of the form k*m + 1 below 2^bits.
    let mut k = (top - 2) / m;
    while k > 0 {
        let cand = k * m + 1;
        if is_prime(cand) {
            return cand;
        }
        k -= 1;
    }
    panic!("no NTT prime below 2^{bits} congruent to 1 mod {m}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miller_rabin_classifies_small_numbers() {
        let primes = [2u64, 3, 5, 7, 11, 13, 65537, 998244353];
        let composites = [1u64, 4, 6, 9, 15, 65535, 341, 561, 1105, 6601];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn find_ntt_prime_is_congruent_and_prime() {
        let q = find_ntt_prime(62, 4096);
        assert!(is_prime(q));
        assert_eq!(q % 4096, 1);
        assert!(q < 1 << 62);
        // A reasonable-size prime: within 1% of the top of the range.
        assert!(q > (1u64 << 62) - (1u64 << 55));
    }

    #[test]
    fn field_ops_are_consistent() {
        let q = PrimeModulus::new(998244353);
        let a = 123456789u64;
        let b = 987654321 % q.value();
        assert_eq!(q.add(a, q.neg(a)), 0);
        assert_eq!(q.sub(a, a), 0);
        assert_eq!(q.mul(a, q.inv(a)), 1);
        assert_eq!(q.mul(a, b), q.mul(b, a));
        assert_eq!(q.pow(a, 0), 1);
        assert_eq!(q.pow(a, 1), a);
        assert_eq!(q.pow(a, 2), q.mul(a, a));
    }

    #[test]
    fn center_and_reduce_signed_roundtrip() {
        let q = PrimeModulus::new(65537);
        for x in [0u64, 1, 2, 32768, 32769, 65536] {
            assert_eq!(q.reduce_signed(q.center(x)), x);
        }
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn composite_modulus_rejected() {
        PrimeModulus::new(65535);
    }
}
