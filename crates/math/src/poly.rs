//! Elements of the quotient ring `R_Q = Z_Q[x]/(x^N + 1)`.
//!
//! A [`Poly`] tracks whether its backing vector holds coefficients or
//! NTT-domain evaluations; mixing the two is a programming error and is
//! caught by assertions rather than silently producing garbage.

use std::sync::Arc;

use crate::ntt::NttTable;

/// Representation domain of a [`Poly`]'s backing storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Plain coefficients `a_0 + a_1 x + …`.
    Coefficient,
    /// ψ-twisted NTT evaluations.
    Ntt,
}

/// A polynomial in `R_Q`, tagged with its representation domain.
#[derive(Debug, Clone)]
pub struct Poly {
    table: Arc<NttTable>,
    domain: Domain,
    data: Vec<u64>,
}

impl Poly {
    /// The zero polynomial in coefficient domain.
    pub fn zero(table: Arc<NttTable>) -> Self {
        let n = table.degree();
        Self { table, domain: Domain::Coefficient, data: vec![0; n] }
    }

    /// Builds a polynomial from reduced coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the ring degree or any
    /// coefficient is not reduced modulo `Q`.
    pub fn from_coeffs(table: Arc<NttTable>, coeffs: Vec<u64>) -> Self {
        assert_eq!(coeffs.len(), table.degree(), "degree mismatch");
        let q = table.modulus().value();
        assert!(coeffs.iter().all(|&c| c < q), "coefficients must be reduced mod Q");
        Self { table, domain: Domain::Coefficient, data: coeffs }
    }

    /// Wraps raw *NTT-domain* data produced by low-level kernels (e.g.
    /// the Shoup multiply-accumulate path of token generation).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the ring degree or any
    /// value is not reduced modulo `Q`.
    pub fn from_ntt_data(table: Arc<NttTable>, data: Vec<u64>) -> Self {
        assert_eq!(data.len(), table.degree(), "degree mismatch");
        let q = table.modulus().value();
        assert!(data.iter().all(|&c| c < q), "values must be reduced mod Q");
        Self { table, domain: Domain::Ntt, data }
    }

    /// Builds a polynomial from signed coefficients, reducing mod `Q`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the ring degree.
    pub fn from_signed(table: Arc<NttTable>, coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), table.degree(), "degree mismatch");
        let m = *table.modulus();
        let data = coeffs.iter().map(|&c| m.reduce_signed(c)).collect();
        Self { table, domain: Domain::Coefficient, data }
    }

    /// The constant polynomial `c`.
    pub fn constant(table: Arc<NttTable>, c: u64) -> Self {
        let mut p = Self::zero(table);
        p.data[0] = p.table.modulus().reduce(c);
        p
    }

    /// Representation domain of the backing data.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The shared NTT table.
    pub fn table(&self) -> &Arc<NttTable> {
        &self.table
    }

    /// Read access to the raw backing data (meaning depends on
    /// [`Self::domain`]).
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Coefficient access; the polynomial must be in coefficient
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics if called on an NTT-domain polynomial.
    pub fn coeffs(&self) -> &[u64] {
        assert_eq!(self.domain, Domain::Coefficient, "polynomial is in NTT domain");
        &self.data
    }

    /// Converts to NTT domain in place (idempotent).
    pub fn to_ntt(&mut self) {
        if self.domain == Domain::Coefficient {
            self.table.forward(&mut self.data);
            self.domain = Domain::Ntt;
        }
    }

    /// Converts to coefficient domain in place (idempotent).
    pub fn to_coeff(&mut self) {
        if self.domain == Domain::Ntt {
            self.table.inverse(&mut self.data);
            self.domain = Domain::Coefficient;
        }
    }

    /// `self += rhs`. Both operands must be in the same domain.
    ///
    /// # Panics
    ///
    /// Panics on domain or table mismatch.
    pub fn add_assign(&mut self, rhs: &Poly) {
        assert_eq!(self.domain, rhs.domain, "domain mismatch");
        self.assert_same_ring(rhs);
        let m = *self.table.modulus();
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a = m.add(*a, b);
        }
    }

    /// `self -= rhs`. Both operands must be in the same domain.
    ///
    /// # Panics
    ///
    /// Panics on domain or table mismatch.
    pub fn sub_assign(&mut self, rhs: &Poly) {
        assert_eq!(self.domain, rhs.domain, "domain mismatch");
        self.assert_same_ring(rhs);
        let m = *self.table.modulus();
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a = m.sub(*a, b);
        }
    }

    /// Negates in place (domain-independent).
    pub fn neg_assign(&mut self) {
        let m = *self.table.modulus();
        for a in self.data.iter_mut() {
            *a = m.neg(*a);
        }
    }

    /// Multiplies by a scalar in place (domain-independent).
    pub fn scale_assign(&mut self, c: u64) {
        let m = *self.table.modulus();
        let c = m.reduce(c);
        for a in self.data.iter_mut() {
            *a = m.mul(*a, c);
        }
    }

    /// Full ring product `self * rhs`; both operands must already be in
    /// NTT domain. The result stays in NTT domain.
    ///
    /// # Panics
    ///
    /// Panics if either operand is in coefficient domain or on table
    /// mismatch.
    pub fn mul_ntt(&self, rhs: &Poly) -> Poly {
        assert_eq!(self.domain, Domain::Ntt, "lhs must be in NTT domain");
        assert_eq!(rhs.domain, Domain::Ntt, "rhs must be in NTT domain");
        self.assert_same_ring(rhs);
        let mut out = vec![0u64; self.data.len()];
        self.table.mul(&self.data, &rhs.data, &mut out);
        Poly { table: Arc::clone(&self.table), domain: Domain::Ntt, data: out }
    }

    /// `self += a * b` with all three polynomials in NTT domain.
    ///
    /// # Panics
    ///
    /// Panics on domain or table mismatch.
    pub fn mul_acc_ntt(&mut self, a: &Poly, b: &Poly) {
        assert_eq!(self.domain, Domain::Ntt, "accumulator must be in NTT domain");
        assert_eq!(a.domain, Domain::Ntt, "a must be in NTT domain");
        assert_eq!(b.domain, Domain::Ntt, "b must be in NTT domain");
        self.assert_same_ring(a);
        self.assert_same_ring(b);
        self.table.mul_acc(&a.data, &b.data, &mut self.data);
    }

    /// Centered (signed) coefficients; the polynomial must be in
    /// coefficient domain.
    ///
    /// # Panics
    ///
    /// Panics if called on an NTT-domain polynomial.
    pub fn centered_coeffs(&self) -> Vec<i64> {
        let m = self.table.modulus();
        self.coeffs().iter().map(|&c| m.center(c)).collect()
    }

    /// The infinity norm of the centered coefficient vector.
    ///
    /// # Panics
    ///
    /// Panics if called on an NTT-domain polynomial.
    pub fn inf_norm(&self) -> u64 {
        self.centered_coeffs().iter().map(|&c| c.unsigned_abs()).max().unwrap_or(0)
    }

    fn assert_same_ring(&self, other: &Poly) {
        assert!(
            Arc::ptr_eq(&self.table, &other.table)
                || (self.table.degree() == other.table.degree()
                    && self.table.modulus().value() == other.table.modulus().value()),
            "polynomials belong to different rings"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Arc<NttTable> {
        Arc::new(NttTable::new(16, 30))
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = table();
        let a = Poly::from_signed(Arc::clone(&t), &[1i64; 16]);
        let b = Poly::from_signed(Arc::clone(&t), &(0..16).map(|i| i as i64).collect::<Vec<_>>());
        let mut c = a.clone();
        c.add_assign(&b);
        c.sub_assign(&b);
        assert_eq!(c.coeffs(), a.coeffs());
    }

    #[test]
    fn constant_times_poly_scales_coefficients() {
        let t = table();
        let mut a = Poly::from_signed(Arc::clone(&t), &(0..16).map(|i| i as i64).collect::<Vec<_>>());
        let mut c = Poly::constant(Arc::clone(&t), 3);
        a.to_ntt();
        c.to_ntt();
        let mut prod = a.mul_ntt(&c);
        prod.to_coeff();
        let expected: Vec<u64> = (0..16).map(|i| 3 * i as u64).collect();
        assert_eq!(prod.coeffs(), &expected[..]);
    }

    #[test]
    fn scale_matches_constant_mul() {
        let t = table();
        let base = Poly::from_signed(Arc::clone(&t), &(0..16).map(|i| 2 * i as i64).collect::<Vec<_>>());
        let mut scaled = base.clone();
        scaled.scale_assign(7);

        let mut a = base.clone();
        let mut c = Poly::constant(Arc::clone(&t), 7);
        a.to_ntt();
        c.to_ntt();
        let mut prod = a.mul_ntt(&c);
        prod.to_coeff();
        assert_eq!(prod.coeffs(), scaled.coeffs());
    }

    #[test]
    fn neg_then_add_gives_zero() {
        let t = table();
        let a = Poly::from_signed(Arc::clone(&t), &[5i64; 16]);
        let mut b = a.clone();
        b.neg_assign();
        b.add_assign(&a);
        assert!(b.coeffs().iter().all(|&c| c == 0));
        assert_eq!(b.inf_norm(), 0);
    }

    #[test]
    fn centered_coeffs_are_signed() {
        let t = table();
        let a = Poly::from_signed(Arc::clone(&t), &[-3i64; 16]);
        assert_eq!(a.centered_coeffs(), vec![-3i64; 16]);
        assert_eq!(a.inf_norm(), 3);
    }

    #[test]
    #[should_panic(expected = "NTT domain")]
    fn coeff_access_in_ntt_domain_panics() {
        let t = table();
        let mut a = Poly::zero(t);
        a.to_ntt();
        let _ = a.coeffs();
    }
}
