//! Mathematical substrate for the Tiptoe private-search system.
//!
//! This crate provides the low-level building blocks shared by every
//! cryptographic and machine-learning component in the workspace:
//!
//! - [`zq`]: arithmetic over `Z_q` for power-of-two moduli (`q = 2^32`,
//!   `q = 2^64`), where the hardware wrap-around *is* the reduction.
//! - [`modp`]: arithmetic over `Z_Q` for odd prime moduli, used by the
//!   ring-LWE outer encryption scheme.
//! - [`ntt`]: negacyclic number-theoretic transforms over NTT-friendly
//!   primes `Q ≡ 1 (mod 2N)`.
//! - [`poly`]: elements of the quotient ring `R_Q = Z_Q[x]/(x^N + 1)`.
//! - [`matrix`]: dense row-major matrices with the mixed-width
//!   matrix-vector kernels that dominate Tiptoe's server cost, in
//!   scalar, cache-blocked, row-parallel, and batched forms.
//! - [`par`]: the scoped-thread span helpers behind the parallel
//!   kernels (`0 = one thread per core`, `TIPTOE_THREADS` override).
//! - [`simd`]: runtime-dispatched AVX2/AVX-512 vector kernels behind
//!   the matvec/preproc hot loops, with a portable scalar fallback
//!   and a `TIPTOE_FORCE_SCALAR` pin for testing both dispatch paths.
//! - [`nibble`]: packed signed-4-bit matrix storage (the paper stores
//!   embeddings as 4-bit integers), 8× smaller than `u32` residues.
//! - [`sample`]: lattice noise distributions (rounded discrete
//!   Gaussians, ternary secrets) over a seeded PRG.
//! - [`fixed`]: the fixed-precision real-to-`Z_p` embedding encoding of
//!   the paper's Appendix B.1.
//! - [`rng`]: deterministic seed derivation so every experiment in the
//!   workspace is reproducible.
//! - [`stats`]: small statistics helpers used by the benchmark harness.
//! - [`wire`]: checked byte-level encoders/decoders backing every
//!   protocol message's verifiable `byte_len()`.
//!
//! Everything here is written against the public API of the paper
//! "Private Web Search with Tiptoe" (SOSP 2023); see the workspace
//! `DESIGN.md` for the full inventory.

// Unsafe is denied crate-wide and re-allowed only for the [`simd`]
// module, which holds every `unsafe` block in the workspace behind
// documented safety contracts (see `DESIGN.md` §15).
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod fixed;
pub mod matrix;
pub mod modp;
pub mod nibble;
pub mod ntt;
pub mod par;
pub mod poly;
pub mod rng;
pub mod sample;
#[allow(unsafe_code)]
pub mod simd;
pub mod stats;
pub mod wire;
pub mod zq;

pub use matrix::Mat;
pub use poly::Poly;
