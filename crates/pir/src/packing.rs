//! Packing byte blobs into `Z_p` database entries.
//!
//! SimplePIR databases store elements of `Z_p`; each element can carry
//! `⌊log2 p⌋` bits of record data. This module provides the bit-level
//! packing and unpacking between byte blobs and entry vectors.

/// Packs bytes into `Z_p` entries at `⌊log2 p⌋` bits per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitPacker {
    bits_per_entry: u32,
}

impl BitPacker {
    /// Creates a packer for plaintext modulus `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2` (no capacity) or `p > 2^30`.
    pub fn new(p: u64) -> Self {
        assert!((2..=1 << 30).contains(&p), "modulus out of packing range");
        let bits = 63 - p.leading_zeros();
        Self { bits_per_entry: bits }
    }

    /// Bits carried by one entry.
    pub fn bits_per_entry(&self) -> u32 {
        self.bits_per_entry
    }

    /// Number of entries needed for `len` bytes.
    pub fn entries_for(&self, len: usize) -> usize {
        (len * 8).div_ceil(self.bits_per_entry as usize)
    }

    /// Packs `bytes` (zero-padded to `padded_len`) into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > padded_len`.
    pub fn pack_into(&self, bytes: &[u8], padded_len: usize, out: &mut Vec<u32>) {
        assert!(bytes.len() <= padded_len, "record longer than padded length");
        let total_bits = padded_len * 8;
        let bits = self.bits_per_entry as usize;
        let mut bit_pos = 0usize;
        while bit_pos < total_bits {
            let mut value = 0u32;
            for offset in 0..bits {
                let idx = bit_pos + offset;
                if idx >= total_bits {
                    break;
                }
                let byte = bytes.get(idx / 8).copied().unwrap_or(0);
                let bit = (byte >> (idx % 8)) & 1;
                value |= (bit as u32) << offset;
            }
            out.push(value);
            bit_pos += bits;
        }
    }

    /// Packs a record into a fresh vector.
    pub fn pack(&self, bytes: &[u8], padded_len: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.entries_for(padded_len));
        self.pack_into(bytes, padded_len, &mut out);
        out
    }

    /// Unpacks entries back into `len` bytes, or `None` if `entries`
    /// is too short (e.g. a truncated PIR answer).
    pub fn try_unpack(&self, entries: &[u32], len: usize) -> Option<Vec<u8>> {
        if entries.len() < self.entries_for(len) {
            return None;
        }
        Some(self.unpack_unchecked(entries, len))
    }

    /// Unpacks entries back into `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is too short for `len` bytes.
    pub fn unpack(&self, entries: &[u32], len: usize) -> Vec<u8> {
        assert!(
            entries.len() >= self.entries_for(len),
            "not enough entries ({}) for {} bytes",
            entries.len(),
            len
        );
        self.unpack_unchecked(entries, len)
    }

    fn unpack_unchecked(&self, entries: &[u32], len: usize) -> Vec<u8> {
        let bits = self.bits_per_entry as usize;
        let mut out = vec![0u8; len];
        for (i, &e) in entries.iter().enumerate() {
            for offset in 0..bits {
                let idx = i * bits + offset;
                if idx >= len * 8 {
                    break;
                }
                let bit = (e >> offset) & 1;
                out[idx / 8] |= (bit as u8) << (idx % 8);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_moduli() {
        let data: Vec<u8> = (0..=255).collect();
        for p in [3u64, 4, 991, 65536, 1 << 17] {
            let packer = BitPacker::new(p);
            let packed = packer.pack(&data, data.len());
            assert!(packed.iter().all(|&e| (e as u64) < p), "entry exceeds p={p}");
            let got = packer.unpack(&packed, data.len());
            assert_eq!(got, data, "roundtrip failed for p={p}");
        }
    }

    #[test]
    fn p_991_gives_nine_bits() {
        let packer = BitPacker::new(991);
        assert_eq!(packer.bits_per_entry(), 9);
        assert_eq!(packer.entries_for(9), 8); // 72 bits / 9
    }

    #[test]
    fn padding_extends_with_zero_entries() {
        let packer = BitPacker::new(991);
        let packed = packer.pack(&[0xff, 0xff], 4);
        assert_eq!(packed.len(), packer.entries_for(4));
        let got = packer.unpack(&packed, 4);
        assert_eq!(got, vec![0xff, 0xff, 0, 0]);
    }

    #[test]
    fn empty_record_packs_to_nothing() {
        let packer = BitPacker::new(991);
        assert!(packer.pack(&[], 0).is_empty());
        assert!(packer.unpack(&[], 0).is_empty());
    }

    #[test]
    fn capacity_matches_paper_chunk_sizing() {
        // Appendix C: URL batches of <= 40 KiB pack into the PIR
        // database at p ≈ 991 (9 bits/entry): ~36k entries per record.
        let packer = BitPacker::new(991);
        let entries = packer.entries_for(40 << 10);
        assert!((36_000..=37_000).contains(&entries), "got {entries}");
    }
}
