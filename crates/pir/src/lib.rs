//! Single-server private information retrieval (SimplePIR) for
//! Tiptoe's URL service (paper §5, Appendix C).
//!
//! The client fetches one *record* (a compressed batch of URLs, up to
//! ~40 KiB) from a server-held array without revealing which one. The
//! construction is SimplePIR over the inner LWE scheme of
//! [`tiptoe_lwe`], with the client-side hint storage eliminated by the
//! [`tiptoe_underhood`] token machinery:
//!
//! - The database is a matrix with **one column per record** and one
//!   row per packed `Z_p` element; Appendix C "unbalances" the matrix
//!   to be much wider than tall, which is exactly this layout once
//!   records are batched to ≤ 40 KiB.
//! - The query is the encryption of a unit vector selecting the target
//!   column. The server's answer is the (encrypted) selected column.
//! - Because the selected column entries are single database entries
//!   (never sums), decryption is exact for any plaintext modulus `p`,
//!   including the non-power-of-two values of Table 11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod packing;

use rand::Rng;
use tiptoe_lwe::{scheme, LweCiphertext, LweParams, MatrixA};
use tiptoe_math::matrix::Mat;
use tiptoe_math::wire::WireError;
use tiptoe_underhood::{
    ClientKey, DecodedToken, EncryptedSecret, ExpandedSecret, QueryToken, Underhood,
};

pub use packing::BitPacker;

/// A PIR database: fixed-size records packed into the columns of a
/// `Z_p` matrix.
pub struct PirDatabase {
    db: Mat<u32>,
    params: LweParams,
    packer: BitPacker,
    record_bytes: usize,
}

impl PirDatabase {
    /// Packs `records` (padded to the longest record) into a PIR
    /// database, choosing the plaintext modulus from the number of
    /// records via the Table 11 rule.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty or all records are empty.
    pub fn build(records: &[Vec<u8>]) -> Self {
        Self::build_with_params(records, LweParams::url_for_upload(records.len().max(1 << 10)))
    }

    /// Packs records under explicit LWE parameters (tests use small,
    /// fast configurations).
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty or all records are empty.
    pub fn build_with_params(records: &[Vec<u8>], params: LweParams) -> Self {
        assert!(!records.is_empty(), "PIR database must have at least one record");
        let record_bytes = records.iter().map(Vec::len).max().expect("nonempty");
        assert!(record_bytes > 0, "records must not all be empty");
        let packer = BitPacker::new(params.p);
        let rows = packer.entries_for(record_bytes);
        let mut db = Mat::zeros(rows, records.len());
        let mut column = Vec::new();
        for (c, record) in records.iter().enumerate() {
            column.clear();
            packer.pack_into(record, record_bytes, &mut column);
            debug_assert_eq!(column.len(), rows);
            for (r, &e) in column.iter().enumerate() {
                db.set(r, c, e);
            }
        }
        Self { db, params, packer, record_bytes }
    }

    /// Number of records (the upload dimension `m`).
    pub fn num_records(&self) -> usize {
        self.db.cols()
    }

    /// Padded record size in bytes.
    pub fn record_bytes(&self) -> usize {
        self.record_bytes
    }

    /// Number of matrix rows (the download dimension `ℓ`).
    pub fn rows(&self) -> usize {
        self.db.rows()
    }

    /// The LWE parameters in use.
    pub fn params(&self) -> &LweParams {
        &self.params
    }

    /// The raw packed matrix (for hint preprocessing).
    pub fn matrix(&self) -> &Mat<u32> {
        &self.db
    }

    /// Server-side bytes held by this database.
    pub fn storage_bytes(&self) -> u64 {
        (self.db.len() * std::mem::size_of::<u32>()) as u64
    }
}

/// The PIR server: the packed database, its SimplePIR hint, and the
/// underhood-preprocessed hint for token generation.
pub struct PirServer {
    db: PirDatabase,
    a: MatrixA,
    uh: Underhood,
    hint: Mat<u32>,
    server_hint: tiptoe_underhood::ServerHint,
}

impl PirServer {
    /// Builds the server state: computes `hint = DB·A` and its
    /// NTT-ready limb decomposition (both are one-time, per-corpus
    /// batch work) using one preprocessing thread per core.
    pub fn new(db: PirDatabase, a_seed: u64, uh: Underhood) -> Self {
        Self::with_threads(db, a_seed, uh, 0)
    }

    /// [`PirServer::new`] with an explicit preprocessing thread count
    /// (`0` = one per core). The hint is bit-identical regardless of
    /// the thread count.
    pub fn with_threads(db: PirDatabase, a_seed: u64, uh: Underhood, num_threads: usize) -> Self {
        let a = MatrixA::new(a_seed, db.num_records(), db.params().n);
        let hint =
            scheme::preproc_par::<u32>(db.matrix(), &a.row_range(0, db.num_records()), num_threads);
        let server_hint = uh.preprocess_hint(&hint);
        Self { db, a, uh, hint, server_hint }
    }

    /// The public matrix descriptor clients encrypt against.
    pub fn public_matrix(&self) -> MatrixA {
        self.a
    }

    /// The database metadata clients need.
    pub fn database(&self) -> &PirDatabase {
        &self.db
    }

    /// The composed-scheme parameters.
    pub fn underhood(&self) -> &Underhood {
        &self.uh
    }

    /// Generates a (single-use) query token for a client's encrypted
    /// secret — the offline phase of §6.3.
    pub fn generate_token(&self, es: &EncryptedSecret) -> QueryToken {
        let _span = tiptoe_obs::span("pir.token_gen");
        self.uh.generate_token(&self.server_hint, es)
    }

    /// Token generation over a pre-expanded secret (shared with other
    /// services holding the same outer parameters).
    pub fn generate_token_expanded(&self, es: &ExpandedSecret) -> QueryToken {
        let _span = tiptoe_obs::span("pir.token_gen");
        self.uh.generate_token_expanded(&self.server_hint, es)
    }

    /// Batched token generation for `B` clients in one pass over the
    /// hint polynomials (each bit-identical to
    /// [`PirServer::generate_token_expanded`] for that client); the
    /// serving plane's token lane flushes through this kernel.
    pub fn generate_token_expanded_many(
        &self,
        secrets: &[&ExpandedSecret],
        num_threads: usize,
    ) -> Vec<QueryToken> {
        let mut span = tiptoe_obs::span("pir.token_gen");
        span.attr_u64("batch", secrets.len() as u64);
        self.uh.generate_token_expanded_many(&self.server_hint, secrets, num_threads)
    }

    /// Answers an online query: `answer = DB · ct`
    /// (touches every record, so the access pattern is
    /// query-independent).
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext dimension differs from the number of
    /// records.
    pub fn answer(&self, ct: &LweCiphertext<u32>) -> Vec<u32> {
        let mut span = tiptoe_obs::span("pir.answer");
        span.attr_u64("rows", self.db.rows() as u64);
        span.attr_u64("cols", self.db.num_records() as u64);
        scheme::apply(self.db.matrix(), ct)
    }

    /// Answers a batch of online queries in one pass over the
    /// database: a record is read from DRAM once for all `B`
    /// ciphertexts. Each answer is bit-identical to
    /// [`PirServer::answer`].
    ///
    /// # Panics
    ///
    /// Panics if any ciphertext dimension differs from the number of
    /// records.
    pub fn answer_many(&self, cts: &[LweCiphertext<u32>], num_threads: usize) -> Vec<Vec<u32>> {
        let mut span = tiptoe_obs::span("pir.answer");
        span.attr_u64("rows", self.db.rows() as u64);
        span.attr_u64("cols", self.db.num_records() as u64);
        span.attr_u64("batch", cts.len() as u64);
        scheme::apply_many(self.db.matrix(), cts, num_threads)
    }

    /// The raw hint (used by tests and by clients that opt into
    /// hint download instead of tokens — the plain-SimplePIR mode the
    /// paper compares against in §6.2).
    pub fn raw_hint(&self) -> &Mat<u32> {
        &self.hint
    }
}

/// Client-side PIR operations.
pub struct PirClient<'a> {
    uh: &'a Underhood,
    key: &'a ClientKey,
}

impl<'a> PirClient<'a> {
    /// Creates a client view over a composite key.
    pub fn new(uh: &'a Underhood, key: &'a ClientKey) -> Self {
        Self { uh, key }
    }

    /// Encrypts a query for record `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn query<R: Rng + ?Sized>(
        &self,
        a: &MatrixA,
        num_records: usize,
        index: usize,
        rng: &mut R,
    ) -> LweCiphertext<u32> {
        assert!(index < num_records, "record index out of range");
        let mut v = vec![0u64; num_records];
        v[index] = 1;
        self.uh.encrypt_query::<u32, _>(self.key, a, &v, rng)
    }

    /// Decodes a token received from the server.
    pub fn decode_token(&self, token: &QueryToken) -> DecodedToken<u32> {
        self.uh.decode_token::<u32>(self.key, token)
    }

    /// Recovers the record bytes from the decrypted answer, or a
    /// [`WireError`] if the answer carries too few entries for the
    /// database's record length (a truncated or hostile response must
    /// not panic the client).
    pub fn recover(
        &self,
        db_meta: &PirDatabase,
        token: &mut DecodedToken<u32>,
        answer: &[u32],
    ) -> Result<Vec<u8>, WireError> {
        if answer.len() != token.rows() {
            return Err(WireError::Invalid("PIR answer length differs from the token rows"));
        }
        let entries = self.uh.decrypt(token, answer);
        db_meta
            .packer
            .try_unpack(
                &entries.iter().map(|&e| e as u32).collect::<Vec<_>>(),
                db_meta.record_bytes,
            )
            .ok_or(WireError::Invalid("PIR answer too short for the record length"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptoe_math::rng::seeded_rng;
    use tiptoe_rlwe::RlweParams;

    fn test_underhood() -> Underhood {
        let lwe = LweParams::insecure_test(32, 991, 6.4);
        let rlwe = RlweParams { degree: 64, q_bits: 58, t: 1 << 24, sigma: 3.2 };
        Underhood::with_outer(lwe, rlwe, 44)
    }

    fn records(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| (0..len).map(|_| rng.gen::<u8>()).collect())
            .collect()
    }

    #[test]
    fn full_pir_roundtrip_with_token() {
        let uh = test_underhood();
        let mut rng = seeded_rng(1);
        let recs = records(24, 100, 2);
        let db = PirDatabase::build_with_params(&recs, *uh.lwe());
        let server = PirServer::new(db, 42, uh.clone());

        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
        let token = server.generate_token(&es);

        let client = PirClient::new(&uh, &key);
        let mut decoded = client.decode_token(&token);
        let target = 17;
        let ct = client.query(&server.public_matrix(), server.database().num_records(), target, &mut rng);
        let answer = server.answer(&ct);
        let got = client.recover(server.database(), &mut decoded, &answer).expect("full answer");
        assert_eq!(got, recs[target]);
    }

    #[test]
    fn batched_answers_are_bit_identical() {
        let uh = test_underhood();
        let mut rng = seeded_rng(7);
        let recs = records(24, 60, 8);
        let db = PirDatabase::build_with_params(&recs, *uh.lwe());
        let server = PirServer::with_threads(db, 44, uh.clone(), 3);
        // The parallel-preprocessed hint matches the scalar one.
        let db2 = PirDatabase::build_with_params(&recs, *uh.lwe());
        let scalar = PirServer::new(db2, 44, uh.clone());
        assert_eq!(server.raw_hint().data(), scalar.raw_hint().data());

        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let client = PirClient::new(&uh, &key);
        let n_records = server.database().num_records();
        let cts: Vec<_> = [3usize, 11, 19]
            .iter()
            .map(|&t| client.query(&server.public_matrix(), n_records, t, &mut rng))
            .collect();
        for threads in [1, 2, 4] {
            let batched = server.answer_many(&cts, threads);
            for (ct, got) in cts.iter().zip(batched.iter()) {
                assert_eq!(got, &server.answer(ct), "threads={threads}");
            }
        }
    }

    #[test]
    fn retrieves_every_record_correctly() {
        let uh = test_underhood();
        let mut rng = seeded_rng(3);
        let recs = records(8, 40, 4);
        let db = PirDatabase::build_with_params(&recs, *uh.lwe());
        let server = PirServer::new(db, 43, uh.clone());
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
        let client = PirClient::new(&uh, &key);
        for target in 0..recs.len() {
            let token = server.generate_token(&es);
            let mut decoded = client.decode_token(&token);
            let ct = client.query(&server.public_matrix(), recs.len(), target, &mut rng);
            let answer = server.answer(&ct);
            assert_eq!(
                client.recover(server.database(), &mut decoded, &answer).expect("full answer"),
                recs[target]
            );
        }
    }

    #[test]
    fn variable_length_records_are_padded() {
        let uh = test_underhood();
        let mut rng = seeded_rng(5);
        let mut recs = records(6, 30, 6);
        recs[2] = vec![7u8; 11]; // shorter record
        let db = PirDatabase::build_with_params(&recs, *uh.lwe());
        assert_eq!(db.record_bytes(), 30);
        let server = PirServer::new(db, 44, uh.clone());
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let es = EncryptedSecret::encrypt(&uh, &key, &mut rng);
        let client = PirClient::new(&uh, &key);
        let token = server.generate_token(&es);
        let mut decoded = client.decode_token(&token);
        let ct = client.query(&server.public_matrix(), recs.len(), 2, &mut rng);
        let answer = server.answer(&ct);
        let got = client.recover(server.database(), &mut decoded, &answer).expect("full answer");
        assert_eq!(&got[..11], &recs[2][..]);
        assert!(got[11..].iter().all(|&b| b == 0), "padding must be zeros");
    }

    #[test]
    fn queries_have_fixed_size_independent_of_index() {
        let uh = test_underhood();
        let mut rng = seeded_rng(7);
        let recs = records(16, 20, 8);
        let db = PirDatabase::build_with_params(&recs, *uh.lwe());
        let server = PirServer::new(db, 45, uh.clone());
        let key = ClientKey::generate(&uh, uh.lwe().n, &mut rng);
        let client = PirClient::new(&uh, &key);
        let sizes: Vec<u64> = (0..16)
            .map(|i| client.query(&server.public_matrix(), 16, i, &mut rng).byte_len())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "query size must not depend on index");
    }

    #[test]
    fn upload_dimension_matches_record_count() {
        let recs = records(12, 16, 9);
        let uh = test_underhood();
        let db = PirDatabase::build_with_params(&recs, *uh.lwe());
        assert_eq!(db.num_records(), 12);
        // 991 -> 9 bits per entry; 16 bytes = 128 bits -> 15 entries.
        assert_eq!(db.rows(), 15);
    }
}
