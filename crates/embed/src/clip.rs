//! The synthetic joint text/image embedding space.
//!
//! Stands in for CLIP (paper §7): text and images map into one
//! 512-dimensional space so that a caption and its image land nearby.
//! Real CLIP inference is unavailable here, so "images" carry a latent
//! vector derived from their (discarded) caption plus bounded noise —
//! the structure of the LAION-400M experiment, where each image's
//! ground-truth neighborhood is defined by its caption (see
//! `DESIGN.md` §2). The text-to-image pipeline downstream is exercised
//! unchanged: a different dimension, a different modality on the
//! server side, the same private ranking protocol.

use rand::Rng;
use tiptoe_math::rng::{derive_seed, seeded_rng};

use crate::text::TextEmbedder;
use crate::vector::{add_assign, normalize, scale};
use crate::Embedder;

/// A simulated image: its identifier plus its position in the joint
/// embedding space.
#[derive(Debug, Clone)]
pub struct SyntheticImage {
    /// Stable identifier (e.g. a URL).
    pub id: String,
    /// The image's latent vector in the joint space.
    pub latent: Vec<f32>,
}

/// The synthetic CLIP-like model: a text tower plus an image "tower"
/// that perturbs the caption embedding.
#[derive(Debug, Clone)]
pub struct ClipLikeEmbedder {
    text_tower: TextEmbedder,
    noise: f32,
    seed: u64,
}

impl ClipLikeEmbedder {
    /// The paper's image configuration: 512 dimensions.
    pub fn paper_image(seed: u64) -> Self {
        Self::new(512, seed, 0.35)
    }

    /// A custom configuration; `noise` controls how far an image
    /// drifts from its caption (0 = identical).
    pub fn new(dim: usize, seed: u64, noise: f32) -> Self {
        Self {
            text_tower: TextEmbedder::new(dim, derive_seed(seed, 1), 0),
            noise,
            seed,
        }
    }

    /// "Runs the image tower": produces the latent vector of the image
    /// described by `caption`, deterministically per `(seed, image_id)`.
    pub fn embed_image(&self, image_id: u64, caption: &str) -> SyntheticImage {
        let mut latent = self.text_tower.embed_text(caption);
        let mut rng = seeded_rng(derive_seed(self.seed, image_id ^ 0x1111_2222));
        let mut noise_vec: Vec<f32> =
            (0..latent.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        normalize(&mut noise_vec);
        scale(&mut noise_vec, self.noise);
        add_assign(&mut latent, &noise_vec);
        normalize(&mut latent);
        SyntheticImage { id: format!("img-{image_id}"), latent }
    }
}

impl Embedder for ClipLikeEmbedder {
    fn dim(&self) -> usize {
        self.text_tower.dim()
    }

    fn embed_text(&self, text: &str) -> Vec<f32> {
        self.text_tower.embed_text(text)
    }

    fn model_bytes(&self) -> u64 {
        // CLIP ViT-B/32 checkpoints are ~600 MiB; the client downloads
        // the text tower only, comparable to the paper's 0.59 GiB.
        590 << 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::dot;

    #[test]
    fn caption_retrieves_its_own_image() {
        let clip = ClipLikeEmbedder::new(256, 3, 0.3);
        let captions = [
            "a train is next to an enclosed train station",
            "a man and a woman pose next to a small dog",
            "a young man wearing a tie and a blue shirt",
            "fresh vegetables on a wooden kitchen table",
        ];
        let images: Vec<SyntheticImage> = captions
            .iter()
            .enumerate()
            .map(|(i, c)| clip.embed_image(i as u64, c))
            .collect();
        for (i, c) in captions.iter().enumerate() {
            let q = clip.embed_text(c);
            let best = images
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    dot(&q, &a.1.latent).partial_cmp(&dot(&q, &b.1.latent)).expect("no NaN")
                })
                .expect("nonempty")
                .0;
            assert_eq!(best, i, "caption {i} should retrieve image {i}");
        }
    }

    #[test]
    fn image_latents_are_unit_norm() {
        let clip = ClipLikeEmbedder::new(128, 4, 0.5);
        let img = clip.embed_image(9, "a cat on a sofa");
        assert!((crate::vector::norm(&img.latent) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn image_embedding_is_deterministic() {
        let clip = ClipLikeEmbedder::new(128, 4, 0.5);
        let a = clip.embed_image(1, "a bridge at sunset");
        let b = clip.embed_image(1, "a bridge at sunset");
        assert_eq!(a.latent, b.latent);
        let c = clip.embed_image(2, "a bridge at sunset");
        assert_ne!(a.latent, c.latent, "different images of the same scene differ");
    }

    #[test]
    fn paper_image_model_has_512_dims() {
        assert_eq!(ClipLikeEmbedder::paper_image(0).dim(), 512);
    }
}
