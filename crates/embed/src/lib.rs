//! Semantic embedding substrate (paper §3.1, §7).
//!
//! Tiptoe treats the embedding model as a black box: any function that
//! maps semantically-similar content to vectors that are close in
//! inner-product distance works, and the paper uses off-the-shelf
//! pretrained transformers (`msmarco-distilbert-base-tas-b` for text,
//! CLIP for images). Since no pretrained transformer is available in
//! this environment, this crate provides the closest synthetic
//! equivalent that exercises the same code paths (see `DESIGN.md` §2):
//!
//! - [`text::TextEmbedder`] — a feature-hashing bag-of-words model
//!   with a seeded sparse random projection to a fixed dimension
//!   (768 by default, matching the paper's text model). Lexically and
//!   topically similar strings land near each other in inner-product
//!   space (Johnson–Lindenstrauss), which is the property every
//!   downstream component depends on.
//! - [`clip::ClipLikeEmbedder`] — a joint text/image space (512-d,
//!   matching CLIP) where "images" carry latent vectors derived from
//!   their captions. Text-to-image search exercises the identical
//!   ranking pipeline at a different dimension.
//! - [`pca::Pca`] — principal component analysis for dimensionality
//!   reduction (768→192 for text, 512→384 for images, §7), computed
//!   over a corpus subsample exactly as the paper's batch jobs do.
//! - [`quantize`] — the fixed-precision signed 4-bit quantization of
//!   Appendix B.1, bridging real vectors to `Z_p`.
//! - [`personalize`] — the §9 client-side personalized-search wrapper
//!   (profile blending; nothing server-side changes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clip;
pub mod pca;
pub mod personalize;
pub mod quantize;
pub mod text;
pub mod vector;

/// A function embedding text into a fixed-dimension vector space.
///
/// All Tiptoe components consume embeddings through this trait, so the
/// synthetic models here can be swapped for real transformer inference
/// without touching the rest of the system.
pub trait Embedder {
    /// Output dimension.
    fn dim(&self) -> usize;

    /// Embeds a text string into an L2-normalized vector.
    fn embed_text(&self, text: &str) -> Vec<f32>;

    /// Serialized model size in bytes (what a client must download;
    /// the paper's text model is 265 MiB).
    fn model_bytes(&self) -> u64;
}

impl<T: Embedder + ?Sized> Embedder for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn embed_text(&self, text: &str) -> Vec<f32> {
        (**self).embed_text(text)
    }

    fn model_bytes(&self) -> u64 {
        (**self).model_bytes()
    }
}
