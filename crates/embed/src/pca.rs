//! Principal component analysis for embedding dimensionality reduction
//! (paper §7: 768→192 for text, 512→384 for images).
//!
//! The client downloads the projection (0.6 MiB in the paper) and
//! applies it locally to its query embedding before any interaction
//! with the Tiptoe services.
//!
//! Because Tiptoe ranks by *inner product*, we diagonalize the
//! **uncentered second-moment matrix** `E[x·xᵀ]` rather than the
//! covariance: projecting onto its top-k eigenvectors is the rank-k
//! linear map that best preserves inner products on average (centering
//! first would shift every inner product by a query-dependent
//! constant). Eigenvectors are computed by block (orthogonal) power
//! iteration over a corpus subsample, as the paper's batch jobs do.

use rand::Rng;
use tiptoe_math::rng::seeded_rng;

/// A fitted PCA projection to `k` dimensions.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Row-major `k × d` orthonormal component matrix.
    components: Vec<Vec<f32>>,
    /// Eigenvalues (descending), for explained-variance diagnostics.
    eigenvalues: Vec<f32>,
    input_dim: usize,
}

impl Pca {
    /// Fits a `k`-dimensional projection from sample vectors.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, dimensions are inconsistent, or
    /// `k` exceeds the input dimension.
    pub fn fit(samples: &[Vec<f32>], k: usize, seed: u64) -> Self {
        assert!(!samples.is_empty(), "PCA needs at least one sample");
        let d = samples[0].len();
        assert!(samples.iter().all(|s| s.len() == d), "inconsistent sample dimensions");
        assert!(k >= 1 && k <= d, "component count out of range");

        // Second-moment matrix in f64 for numerical stability.
        let mut c = vec![0.0f64; d * d];
        for s in samples {
            for i in 0..d {
                let si = s[i] as f64;
                if si == 0.0 {
                    continue;
                }
                let row = &mut c[i * d..(i + 1) * d];
                for (j, x) in row.iter_mut().enumerate() {
                    *x += si * s[j] as f64;
                }
            }
        }
        let inv_n = 1.0 / samples.len() as f64;
        for x in c.iter_mut() {
            *x *= inv_n;
        }

        // Block power iteration: Q <- orth(C·Q).
        let mut rng = seeded_rng(seed);
        let mut q: Vec<Vec<f64>> =
            (0..k).map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        orthonormalize(&mut q);
        let iters = 30;
        let mut z: Vec<Vec<f64>> = vec![vec![0.0; d]; k];
        for _ in 0..iters {
            for (zi, qi) in z.iter_mut().zip(q.iter()) {
                matvec_sym(&c, d, qi, zi);
            }
            std::mem::swap(&mut q, &mut z);
            orthonormalize(&mut q);
        }

        // Rayleigh quotients as eigenvalue estimates; sort descending.
        let mut pairs: Vec<(f64, Vec<f64>)> = q
            .into_iter()
            .map(|qi| {
                let mut cq = vec![0.0; d];
                matvec_sym(&c, d, &qi, &mut cq);
                let lambda = qi.iter().zip(cq.iter()).map(|(&a, &b)| a * b).sum::<f64>();
                (lambda, qi)
            })
            .collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN eigenvalues"));

        Self {
            eigenvalues: pairs.iter().map(|(l, _)| *l as f32).collect(),
            components: pairs
                .into_iter()
                .map(|(_, v)| v.into_iter().map(|x| x as f32).collect())
                .collect(),
            input_dim: d,
        }
    }

    /// Output dimension `k`.
    pub fn output_dim(&self) -> usize {
        self.components.len()
    }

    /// Input dimension `d`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Eigenvalue estimates (descending).
    pub fn eigenvalues(&self) -> &[f32] {
        &self.eigenvalues
    }

    /// Projects a vector into the component space.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the input dimension.
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.input_dim, "dimension mismatch");
        self.components
            .iter()
            .map(|c| c.iter().zip(v.iter()).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Lifts a reduced vector back into the input space via the
    /// transpose of the (orthonormal) component matrix — the
    /// minimum-norm preimage of [`Self::project`].
    ///
    /// # Panics
    ///
    /// Panics if `reduced.len()` differs from the output dimension.
    pub fn lift(&self, reduced: &[f32]) -> Vec<f32> {
        assert_eq!(reduced.len(), self.output_dim(), "dimension mismatch");
        let mut out = vec![0.0f32; self.input_dim];
        for (c, &coef) in self.components.iter().zip(reduced.iter()) {
            for (o, &v) in out.iter_mut().zip(c.iter()) {
                *o += coef * v;
            }
        }
        out
    }

    /// Size of the serialized projection in bytes (`k·d` f32 values —
    /// the client download the paper reports as 0.6 MiB).
    pub fn projection_bytes(&self) -> u64 {
        (self.output_dim() * self.input_dim * 4) as u64
    }
}

/// `out = C·v` for a symmetric row-major `d×d` matrix.
fn matvec_sym(c: &[f64], d: usize, v: &[f64], out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        let row = &c[i * d..(i + 1) * d];
        *o = row.iter().zip(v.iter()).map(|(&a, &b)| a * b).sum();
    }
}

/// In-place modified Gram-Schmidt.
fn orthonormalize(q: &mut [Vec<f64>]) {
    for i in 0..q.len() {
        for j in 0..i {
            let proj: f64 = q[i].iter().zip(q[j].iter()).map(|(&a, &b)| a * b).sum();
            let (left, right) = q.split_at_mut(i);
            for (x, &y) in right[0].iter_mut().zip(left[j].iter()) {
                *x -= proj * y;
            }
        }
        let n: f64 = q[i].iter().map(|&x| x * x).sum::<f64>().sqrt();
        if n > 1e-12 {
            for x in q[i].iter_mut() {
                *x /= n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::dot;

    /// Synthetic low-rank data: points near a 3-dimensional subspace
    /// of a 16-dimensional space.
    fn low_rank_samples(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = seeded_rng(seed);
        let basis: Vec<Vec<f32>> = (0..3)
            .map(|_| (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        (0..n)
            .map(|_| {
                let mut v = vec![0.0f32; 16];
                for b in &basis {
                    let c = rng.gen_range(-1.0f32..1.0);
                    for (x, &y) in v.iter_mut().zip(b.iter()) {
                        *x += c * y;
                    }
                }
                for x in v.iter_mut() {
                    *x += rng.gen_range(-0.01f32..0.01);
                }
                v
            })
            .collect()
    }

    #[test]
    fn components_are_orthonormal() {
        let samples = low_rank_samples(200, 1);
        let pca = Pca::fit(&samples, 4, 2);
        for i in 0..4 {
            for j in 0..4 {
                let d = dot(&pca.components[i], &pca.components[j]);
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-4, "Q[{i}]·Q[{j}] = {d}");
            }
        }
    }

    #[test]
    fn low_rank_data_reconstructs_through_top_components() {
        let samples = low_rank_samples(300, 3);
        let pca = Pca::fit(&samples, 3, 4);
        // Inner products must be preserved through the rank-3 projection.
        for pair in samples.windows(2).take(20) {
            let orig = dot(&pair[0], &pair[1]);
            let proj = dot(&pca.project(&pair[0]), &pca.project(&pair[1]));
            assert!((orig - proj).abs() < 0.05, "orig {orig} vs projected {proj}");
        }
    }

    #[test]
    fn eigenvalues_are_descending() {
        let samples = low_rank_samples(300, 5);
        let pca = Pca::fit(&samples, 5, 6);
        for w in pca.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-6, "eigenvalues not sorted: {:?}", pca.eigenvalues());
        }
        // Rank-3 data: 4th and 5th eigenvalues are noise-level.
        assert!(pca.eigenvalues()[3] < pca.eigenvalues()[0] * 0.01);
    }

    #[test]
    fn lift_is_a_right_inverse_of_project() {
        let samples = low_rank_samples(200, 11);
        let pca = Pca::fit(&samples, 3, 12);
        let reduced = pca.project(&samples[0]);
        let lifted = pca.lift(&reduced);
        let reprojected = pca.project(&lifted);
        for (a, b) in reduced.iter().zip(reprojected.iter()) {
            assert!((a - b).abs() < 1e-4, "project(lift(x)) must equal x");
        }
    }

    #[test]
    fn projection_bytes_matches_shape() {
        let samples = low_rank_samples(50, 7);
        let pca = Pca::fit(&samples, 4, 8);
        assert_eq!(pca.projection_bytes(), (4 * 16 * 4) as u64);
        assert_eq!(pca.output_dim(), 4);
        assert_eq!(pca.input_dim(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_components_rejected() {
        let samples = low_rank_samples(10, 9);
        let _ = Pca::fit(&samples, 17, 10);
    }
}
