//! Fixed-precision quantization of embeddings (paper §8.6 and
//! Appendix B.1).
//!
//! Tiptoe reduces embedding precision "from floating point values to
//! signed 4-bit integers, decreasing MRR@100 by 0.005" (§8.6), then
//! maps each signed value into `Z_p` for the homomorphic inner-product
//! computation. With 4-bit signed values (`b = 3` precision bits plus
//! sign) and `p = 2^17`, inner products of 192-dimensional vectors
//! never wrap (Appendix C).

use tiptoe_math::fixed::FixedEncoder;

/// A quantizer from real embeddings to `Z_p` vectors.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    encoder: FixedEncoder,
}

impl Quantizer {
    /// The paper's text-search configuration: signed 4-bit values
    /// (`b = 3`) over `p = 2^17`.
    pub fn paper_text() -> Self {
        Self::new(3, 1 << 17)
    }

    /// The paper's image-search configuration: signed 4-bit values
    /// over `p = 2^15`.
    pub fn paper_image() -> Self {
        Self::new(3, 1 << 15)
    }

    /// A custom quantizer with `bits` precision bits over modulus `p`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`FixedEncoder::new`]).
    pub fn new(bits: u32, p: u64) -> Self {
        Self { encoder: FixedEncoder::new(bits, p) }
    }

    /// The underlying fixed-precision encoder.
    pub fn encoder(&self) -> &FixedEncoder {
        &self.encoder
    }

    /// The plaintext modulus.
    pub fn modulus(&self) -> u64 {
        self.encoder.modulus()
    }

    /// Quantizes to signed small integers (e.g. `[-8, 8]` for 4-bit).
    pub fn to_signed(&self, v: &[f32]) -> Vec<i64> {
        v.iter().map(|&x| self.encoder.encode_signed(x)).collect()
    }

    /// Quantizes to `Z_p` residues ready for the database matrix.
    pub fn to_zp(&self, v: &[f32]) -> Vec<u32> {
        v.iter().map(|&x| self.encoder.encode(x) as u32).collect()
    }

    /// Recovers the (approximate) real inner product from a `Z_p`
    /// inner-product score.
    pub fn score_to_f32(&self, score: u64) -> f32 {
        self.encoder.decode_product(score) as f32
    }

    /// Signed inner product of two quantized vectors, as the
    /// (decrypted) server computation produces it.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn quantized_dot(&self, a: &[u32], b: &[u32]) -> i64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        let score = self.encoder.inner_product_mod_p(
            &a.iter().map(|&x| x as u64).collect::<Vec<_>>(),
            &b.iter().map(|&x| x as u64).collect::<Vec<_>>(),
        );
        self.encoder.decode_signed(score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, normalize};
    use rand::Rng;
    use tiptoe_math::rng::seeded_rng;

    #[test]
    fn quantized_dot_tracks_float_dot() {
        let quant = Quantizer::paper_text();
        let mut rng = seeded_rng(1);
        // 4-bit quantization of unit vectors at d = 192 gives a dot-
        // product error with std ≈ 0.05, so individual trials can
        // stray past 0.15; bound each trial at ~5σ and the mean (the
        // quantity ranking quality actually depends on) much tighter.
        let mut total_err = 0.0f32;
        const TRIALS: usize = 50;
        for _ in 0..TRIALS {
            let mut a: Vec<f32> = (0..192).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let mut b: Vec<f32> = (0..192).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            normalize(&mut a);
            normalize(&mut b);
            let float_dot = dot(&a, &b);
            let qa = quant.to_zp(&a);
            let qb = quant.to_zp(&b);
            let approx = quant.quantized_dot(&qa, &qb) as f32 / 64.0; // scale 2^3 twice
            let err = (float_dot - approx).abs();
            assert!(err < 0.25, "float {float_dot} vs quantized {approx}");
            total_err += err;
        }
        let mean_err = total_err / TRIALS as f32;
        assert!(mean_err < 0.08, "mean quantization error too large: {mean_err}");
    }

    #[test]
    fn quantized_ranking_preserves_order_of_separated_scores() {
        let quant = Quantizer::paper_text();
        let mut rng = seeded_rng(2);
        let mut q: Vec<f32> = (0..192).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        normalize(&mut q);
        // A close document and a far document.
        let mut close = q.clone();
        for x in close.iter_mut() {
            *x += rng.gen_range(-0.1f32..0.1);
        }
        normalize(&mut close);
        let mut far: Vec<f32> = (0..192).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        normalize(&mut far);

        let qq = quant.to_zp(&q);
        let qc = quant.to_zp(&close);
        let qf = quant.to_zp(&far);
        assert!(quant.quantized_dot(&qq, &qc) > quant.quantized_dot(&qq, &qf));
    }

    #[test]
    fn signed_range_is_4_bit() {
        let quant = Quantizer::paper_text();
        let signed = quant.to_signed(&[-1.0, -0.5, 0.0, 0.5, 1.0]);
        assert_eq!(signed, vec![-8, -4, 0, 4, 8]);
        assert!(signed.iter().all(|&x| (-8..=8).contains(&x)));
    }

    #[test]
    fn out_of_range_values_clip() {
        let quant = Quantizer::paper_text();
        assert_eq!(quant.to_signed(&[9.0])[0], 8);
        assert_eq!(quant.to_signed(&[-9.0])[0], -8);
    }
}
