//! Dense `f32` vector helpers shared by the embedding, clustering, and
//! retrieval components.

/// Inner (dot) product.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn dist2(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Normalizes to unit L2 norm in place (no-op for the zero vector).
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// `a += b`.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += y;
    }
}

/// `a *= c`.
pub fn scale(a: &mut [f32], c: f32) {
    for x in a.iter_mut() {
        *x *= c;
    }
}

/// The element-wise mean of a set of vectors.
///
/// # Panics
///
/// Panics if `vs` is empty or dimensions differ.
pub fn mean(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "mean of empty set");
    let mut out = vec![0.0; vs[0].len()];
    for v in vs {
        add_assign(&mut out, v);
    }
    scale(&mut out, 1.0 / vs.len() as f32);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_basics() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn normalize_produces_unit_vector() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_of_two_vectors() {
        let a = [1.0f32, 3.0];
        let b = [3.0f32, 5.0];
        assert_eq!(mean(&[&a, &b]), vec![2.0, 4.0]);
    }
}
