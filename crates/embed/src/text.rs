//! The synthetic text embedding model.
//!
//! Stands in for `msmarco-distilbert-base-tas-b` (768-d): a
//! feature-hashing bag-of-words over word unigrams, word bigrams, and
//! character trigrams, followed by a seeded *sparse* random projection
//! (each hashed feature touches a few signed output coordinates), then
//! L2 normalization. Inner products of the outputs track lexical and
//! topical overlap of the inputs, which is the black-box property
//! Tiptoe needs from its embedding function.
//!
//! Like the paper's model, the embedder only consumes a bounded prefix
//! of each document (the paper embeds the first 512 tokens).

use tiptoe_math::rng::derive_seed;

use crate::vector::normalize;
use crate::Embedder;

/// Number of output coordinates each hashed feature touches.
const FEATURE_FANOUT: usize = 8;

/// Maximum number of tokens consumed per document (the paper's model
/// truncates at 512 tokens).
pub const MAX_TOKENS: usize = 512;

/// The synthetic 768-dimensional text embedding model.
#[derive(Debug, Clone)]
pub struct TextEmbedder {
    dim: usize,
    seed: u64,
    /// Simulated serialized-model size (the paper's model download is
    /// 265 MiB; ours is a seed, but the cost model can override).
    model_bytes: u64,
}

impl TextEmbedder {
    /// The paper's text configuration: 768 dimensions.
    pub fn paper_text(seed: u64) -> Self {
        Self::new(768, seed, 265 << 20)
    }

    /// A custom-dimension embedder.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64, model_bytes: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim, seed, model_bytes }
    }

    /// Lowercases and splits into alphanumeric tokens.
    pub fn tokenize(text: &str) -> Vec<String> {
        text.to_lowercase()
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .take(MAX_TOKENS)
            .collect()
    }

    /// FNV-1a hash of a feature string, mixed with the model seed.
    fn feature_hash(&self, feature: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for b in feature.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Scatters one weighted feature into the accumulator via the
    /// sparse signed projection.
    fn scatter(&self, acc: &mut [f32], feature: &str, weight: f32) {
        let h = self.feature_hash(feature);
        for k in 0..FEATURE_FANOUT {
            let r = derive_seed(h, k as u64);
            let idx = (r as usize) % self.dim;
            let sign = if (r >> 63) & 1 == 1 { 1.0 } else { -1.0 };
            acc[idx] += sign * weight;
        }
    }
}

impl Embedder for TextEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_text(&self, text: &str) -> Vec<f32> {
        let tokens = Self::tokenize(text);
        let mut acc = vec![0.0f32; self.dim];
        // Word unigrams (sub-linear term weighting, tf-style).
        let mut counts: std::collections::HashMap<&str, f32> = std::collections::HashMap::new();
        for t in &tokens {
            *counts.entry(t.as_str()).or_insert(0.0) += 1.0;
        }
        for (t, c) in &counts {
            self.scatter(&mut acc, t, 1.0 + c.ln());
        }
        // Word bigrams capture local phrase structure.
        for pair in tokens.windows(2) {
            let bigram = format!("{}\u{1}{}", pair[0], pair[1]);
            self.scatter(&mut acc, &bigram, 0.5);
        }
        // Character trigrams give partial-match robustness.
        for t in &tokens {
            let bytes = t.as_bytes();
            if bytes.len() >= 3 {
                for w in bytes.windows(3) {
                    let tri = format!("#{}", String::from_utf8_lossy(w));
                    self.scatter(&mut acc, &tri, 0.25);
                }
            }
        }
        normalize(&mut acc);
        acc
    }

    fn model_bytes(&self) -> u64 {
        self.model_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, norm};

    fn embedder() -> TextEmbedder {
        TextEmbedder::new(256, 7, 0)
    }

    #[test]
    fn embeddings_are_unit_norm_and_deterministic() {
        let e = embedder();
        let a = e.embed_text("private web search with tiptoe");
        let b = e.embed_text("private web search with tiptoe");
        assert_eq!(a, b);
        assert!((norm(&a) - 1.0).abs() < 1e-5);
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let e = embedder();
        let q = e.embed_text("symptoms of knee pain after running");
        let related = e.embed_text("knee pain symptoms and treatment for runners");
        let unrelated = e.embed_text("quarterly corporate tax filing deadlines");
        assert!(
            dot(&q, &related) > dot(&q, &unrelated) + 0.1,
            "related {} vs unrelated {}",
            dot(&q, &related),
            dot(&q, &unrelated)
        );
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = embedder();
        let v = e.embed_text("   ");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tokenizer_truncates_at_max_tokens() {
        let long: String = (0..2000).map(|i| format!("w{i} ")).collect();
        assert_eq!(TextEmbedder::tokenize(&long).len(), MAX_TOKENS);
    }

    #[test]
    fn different_seeds_give_different_models() {
        let a = TextEmbedder::new(128, 1, 0).embed_text("hello world");
        let b = TextEmbedder::new(128, 2, 0).embed_text("hello world");
        assert_ne!(a, b);
    }

    #[test]
    fn paper_text_model_has_768_dims() {
        let e = TextEmbedder::paper_text(0);
        assert_eq!(e.dim(), 768);
        assert_eq!(e.model_bytes(), 265 << 20);
    }
}
