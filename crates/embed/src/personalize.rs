//! Personalized search (paper §9, "Personalized search").
//!
//! "Tiptoe could potentially support personalized search by
//! incorporating a client-side embedding function that takes as input
//! not only the user's query, but also the user's search profile. …
//! The servers could continue using their embedding function that does
//! not take a search profile as input."
//!
//! [`PersonalizedEmbedder`] is exactly that client-side function: it
//! wraps any base [`Embedder`] and blends a private profile vector
//! into the query embedding before normalization. Nothing server-side
//! changes — the profile never leaves the client (it only shifts which
//! ciphertext the client sends, which the server cannot read anyway).

use crate::vector::{add_assign, normalize, scale};
use crate::Embedder;

/// A client-side embedder that mixes a private profile into every
/// query embedding.
#[derive(Debug, Clone)]
pub struct PersonalizedEmbedder<E: Embedder> {
    base: E,
    profile: Vec<f32>,
    /// Blend weight in `[0, 1]`: 0 = no personalization, 1 = profile
    /// only.
    weight: f32,
}

impl<E: Embedder> PersonalizedEmbedder<E> {
    /// Wraps `base` with a profile vector (e.g. the mean embedding of
    /// the user's location, language, or recent interests).
    ///
    /// # Panics
    ///
    /// Panics if the profile dimension differs from the base model's
    /// or `weight` is outside `[0, 1]`.
    pub fn new(base: E, mut profile: Vec<f32>, weight: f32) -> Self {
        assert_eq!(profile.len(), base.dim(), "profile dimension mismatch");
        assert!((0.0..=1.0).contains(&weight), "weight out of range");
        normalize(&mut profile);
        Self { base, profile, weight }
    }

    /// Replaces the profile (e.g. when the user moves).
    ///
    /// # Panics
    ///
    /// Panics if the dimension differs from the base model's.
    pub fn set_profile(&mut self, mut profile: Vec<f32>) {
        assert_eq!(profile.len(), self.base.dim(), "profile dimension mismatch");
        normalize(&mut profile);
        self.profile = profile;
    }

    /// The wrapped base model.
    pub fn base(&self) -> &E {
        &self.base
    }
}

impl<E: Embedder> Embedder for PersonalizedEmbedder<E> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn embed_text(&self, text: &str) -> Vec<f32> {
        let mut q = self.base.embed_text(text);
        scale(&mut q, 1.0 - self.weight);
        let mut p = self.profile.clone();
        scale(&mut p, self.weight);
        add_assign(&mut q, &p);
        normalize(&mut q);
        q
    }

    fn model_bytes(&self) -> u64 {
        // The profile lives client-side; the download is the base model.
        self.base.model_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::TextEmbedder;
    use crate::vector::dot;

    #[test]
    fn profile_pulls_queries_toward_profile_topics() {
        let base = TextEmbedder::new(128, 3, 0);
        let profile = base.embed_text("vegetarian restaurants in tokyo japan");
        let personalized = PersonalizedEmbedder::new(base.clone(), profile.clone(), 0.4);

        let plain = base.embed_text("restaurants");
        let shifted = personalized.embed_text("restaurants");
        assert!(
            dot(&shifted, &profile) > dot(&plain, &profile) + 0.05,
            "personalization must move the query toward the profile"
        );
    }

    #[test]
    fn zero_weight_is_the_base_model() {
        let base = TextEmbedder::new(64, 4, 0);
        let profile = base.embed_text("anything");
        let personalized = PersonalizedEmbedder::new(base.clone(), profile, 0.0);
        let a = base.embed_text("knee pain");
        let b = personalized.embed_text("knee pain");
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn outputs_stay_unit_norm() {
        let base = TextEmbedder::new(64, 5, 0);
        let profile = base.embed_text("cycling routes");
        let personalized = PersonalizedEmbedder::new(base, profile, 0.7);
        let v = personalized.embed_text("weekend plans");
        assert!((crate::vector::norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_profile_dimension_rejected() {
        let base = TextEmbedder::new(64, 6, 0);
        let _ = PersonalizedEmbedder::new(base, vec![0.0; 32], 0.5);
    }
}
