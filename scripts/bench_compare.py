#!/usr/bin/env python3
"""Bench-regression gate: compare a freshly generated bench artifact
against the committed baseline and fail on regression.

Usage: bench_compare.py <kind> <baseline.json> <current.json>
  kind: kernels | serving | faults

Wall-clock numbers (qps, seconds, latency percentiles) are NOT gated —
they measure the runner, not the code. The gate covers:

  * structure: required keys present, result rows non-empty, counts
    consistent (e.g. offered == admitted + shed);
  * deterministic values: seeded quality metrics (MRR at fault rate 0),
    direct-mode scans-per-query (a pure function of the shard count);
  * scan-normalized ratios with a tolerance band: batch amortization
    (queries per scan) and kernel speedup-vs-scalar may wobble with
    scheduling noise, but a collapse past the band means the
    optimization actually broke (e.g. SIMD dispatch silently pinned to
    scalar, or the coalescer stopped batching).

Rows are matched by identity keys (kernel/variant/shape, or
clients/mode); rows present only on one side are reported but only
gate when the *baseline* row disappeared from a same-config run.
"""

import json
import sys

# A ratio metric must stay above TOLERANCE x baseline to pass. The
# band is deliberately generous: CI boxes differ from the baseline
# host, and this gate exists to catch collapses, not jitter.
TOLERANCE = 0.5

failures = []
notes = []


def fail(msg):
    failures.append(msg)


def note(msg):
    notes.append(msg)


def band(label, current, baseline):
    """Gate `current >= TOLERANCE * baseline` for a ratio metric."""
    if baseline <= 0:
        note(f"{label}: baseline {baseline} not gateable")
        return
    if current < TOLERANCE * baseline:
        fail(
            f"{label}: {current:.3f} vs baseline {baseline:.3f} "
            f"(below {TOLERANCE:.0%} band)"
        )
    else:
        note(f"{label}: {current:.3f} vs baseline {baseline:.3f} ok")


def same_config(base, cur, keys):
    return all(base.get(k) == cur.get(k) for k in keys)


def compare_kernels(base, cur):
    if not cur.get("results"):
        fail("kernels: no results")
        return
    reps = cur.get("reps", 0)
    samples = cur.get("rep_samples", 0)
    if samples and samples % max(reps, 1) != 0:
        fail(f"kernels: rep_samples {samples} not a multiple of reps {reps}")
    by_key = {
        (r["kernel"], r["variant"], r["shape"]): r for r in base["results"]
    }
    for r in cur["results"]:
        if r["seconds"] <= 0:
            fail(f"kernels {r['kernel']}/{r['variant']}: non-positive time")
        b = by_key.get((r["kernel"], r["variant"], r["shape"]))
        if b is None:
            # Variant names embed the SIMD tier; a different runner
            # produces different names, which is not a regression.
            note(f"kernels {r['kernel']}/{r['variant']}: no baseline row")
            continue
        # Speedup over scalar is a same-host ratio: gate it, banded.
        # Skip overhead baselines and memory-bound shapes (their note
        # says the ratio measures DRAM, not the kernel).
        if r["variant"].startswith("dispatched") and "note" not in r:
            band(
                f"kernels {r['kernel']}/{r['variant']} speedup",
                r["speedup_vs_scalar"],
                b["speedup_vs_scalar"],
            )


def compare_serving(base, cur):
    rows = cur.get("results", [])
    if not rows:
        fail("serving: no results")
        return
    shards = cur["shards"]
    for r in rows:
        if r["scans"] <= 0:
            fail(f"serving {r['clients']}/{r['mode']}: no scans recorded")
        if r["mode"] == "direct":
            # Direct serving is exactly one scan per lane per query:
            # a pure function of the shard count, gated exactly.
            want = 1.0 / (shards + 1)
            if abs(r["queries_per_scan"] - want) > 1e-6:
                fail(
                    f"serving direct@{r['clients']}: queries_per_scan "
                    f"{r['queries_per_scan']} != {want}"
                )
    if not same_config(base, cur, ["docs", "shards", "queries_per_client"]):
        note("serving: config differs from baseline; skipping row bands")
        return
    by_key = {(r["clients"], r["mode"]): r for r in base["results"]}
    for r in rows:
        b = by_key.get((r["clients"], r["mode"]))
        if b is None:
            note(f"serving {r['clients']}/{r['mode']}: no baseline row")
            continue
        if r["mode"] == "coalesced" and r["clients"] > 1:
            # Scan amortization is the plane's raison d'etre: gate it.
            band(
                f"serving coalesced@{r['clients']} queries_per_scan",
                r["queries_per_scan"],
                b["queries_per_scan"],
            )
    if "speedup_scanbound_maxclients_vs_direct_1" in cur:
        band(
            "serving scan-bound speedup",
            cur["speedup_scanbound_maxclients_vs_direct_1"],
            base.get("speedup_scanbound_maxclients_vs_direct_1", 0),
        )


def compare_faults(base, cur):
    rows = cur.get("results", [])
    if not rows:
        fail("faults: no results")
        return
    ov = cur.get("overload", {})
    if ov:
        if ov["offered"] != ov["admitted"] + ov["shed"]:
            fail(
                f"faults overload: offered {ov['offered']} != admitted "
                f"{ov['admitted']} + shed {ov['shed']}"
            )
        if ov["admitted"] <= 0 or ov["shed"] <= 0:
            fail("faults overload: 2x-capacity drive must admit and shed")
    clean = next((r for r in rows if r["fault_rate"] == 0.0), None)
    if clean is None:
        fail("faults: no fault_rate=0 row")
        return
    for key in ("retries", "timeouts", "corrupted", "degraded_queries"):
        if clean[key] != 0:
            fail(f"faults rate=0: {key} = {clean[key]}, want 0")
    if abs(clean["mrr_at_k"] - cur["baseline_mrr"]) > 1e-9:
        fail("faults rate=0: MRR differs from the run's own baseline")
    if same_config(base, cur, ["docs", "queries", "shards", "k"]):
        # Seeded and deterministic: the clean-run MRR must match the
        # committed baseline exactly.
        if abs(cur["baseline_mrr"] - base["baseline_mrr"]) > 1e-6:
            fail(
                f"faults: baseline_mrr {cur['baseline_mrr']} != committed "
                f"{base['baseline_mrr']} at identical config"
            )
    else:
        note("faults: config differs from baseline; skipping MRR pin")


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    kind, base_path, cur_path = sys.argv[1:]
    with open(base_path) as f:
        base = json.load(f)
    with open(cur_path) as f:
        cur = json.load(f)
    {
        "kernels": compare_kernels,
        "serving": compare_serving,
        "faults": compare_faults,
    }[kind](base, cur)
    for n in notes:
        print(f"  note: {n}")
    if failures:
        print(f"{kind}: {len(failures)} regression(s)")
        for f_ in failures:
            print(f"  FAIL: {f_}")
        sys.exit(1)
    print(f"{kind}: no regression ({len(notes)} checks)")


if __name__ == "__main__":
    main()
